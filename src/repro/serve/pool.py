"""Warm worker pool: resident checker processes that outlive jobs.

A cold ``python -m repro check`` pays interpreter boot, module imports,
corpus loading, and an empty solver-query cache on every invocation.  The
daemon amortizes all of that: each :class:`WarmWorkerPool` worker is a
long-lived process that imports the pipeline once, keeps its
:class:`~repro.engine.cache.SolverQueryCache` (and with it every blast memo
the cache fronts) resident across jobs, and accepts work units one at a
time over its own task queue.  A unit structurally identical to anything
any previous job checked answers straight from the warm cache — no
bit-blasting, no CDCL.

Robustness contract (exercised by ``tests/test_serve.py``):

* **Worker death is survivable.**  Each worker announces tasks as it starts
  them, so the parent always knows what a worker was holding.  When a
  worker dies mid-unit, its in-flight and queued tasks are resubmitted to
  surviving workers (up to ``max_retries`` per task, then reported failed),
  a replacement worker is spawned seeded from the authoritative cache, and
  the run completes with deterministic records for every surviving unit —
  no hang, no lost task, no duplicate result (first completion wins).
* **Graceful shutdown.**  ``close(drain=True)`` lets every queued task
  finish, collects the final cache entries, then stops workers via
  sentinels; ``close(drain=False)`` terminates immediately.

The pool is transport-agnostic: the daemon drives it, but tests drive it
directly.  Task identifiers are caller-chosen opaque strings.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.checker import CheckerConfig
from repro.core.report import BugReport
from repro.engine.cache import SolverQueryCache
from repro.engine.workunit import UnitResult, WorkUnit, check_work_unit
from repro.obs.ops import Ops

#: Environment flag gating test-only fault injection (see ``_worker_main``).
TEST_HOOKS_ENV = "REPRO_SERVE_TEST_HOOKS"

#: Unit meta key that, with :data:`TEST_HOOKS_ENV` set, makes the worker
#: process die mid-unit — the worker-death regression tests' crash lever.
CRASH_META_KEY = "__serve_crash__"


def _worker_main(worker_id: int, task_queue, result_queue,
                 checker: CheckerConfig, cache_seed: Optional[List[dict]],
                 cache_capacity: int, escalation: Tuple[float, ...]) -> None:
    """Body of one warm worker process.

    The cache constructed here is the worker's warm state: it persists
    across every task the worker ever runs.  Discovered entries are drained
    into each result so the parent can absorb them into the authoritative
    cache (and seed future replacement workers from it).
    """
    cache = SolverQueryCache(capacity=cache_capacity)
    if cache_seed:
        cache.seed(cache_seed)
    while True:
        task = task_queue.get()
        if task is None:
            result_queue.put(("bye", worker_id, None, None))
            return
        task_id, unit, config = task
        result_queue.put(("start", worker_id, task_id, None))
        if unit.meta.get(CRASH_META_KEY) and os.environ.get(TEST_HOOKS_ENV):
            time.sleep(0.05)              # let the "start" announcement flush
            os._exit(42)                  # simulated mid-unit worker death
        try:
            result = check_work_unit(unit, config or checker, cache=cache,
                                     escalation_factors=escalation,
                                     drain_cache=True)
        except BaseException as exc:      # a bad unit must not kill the worker
            result = UnitResult(name=unit.name,
                                report=BugReport(module=unit.name),
                                error=f"{type(exc).__name__}: {exc}",
                                meta=dict(unit.meta))
        result_queue.put(("done", worker_id, task_id, result))


@dataclass
class _Task:
    task_id: str
    unit: WorkUnit
    config: Optional[CheckerConfig]
    worker_id: int = -1
    started: bool = False
    retries: int = 0


@dataclass
class PoolEvent:
    """One observable pool outcome, returned by :meth:`WarmWorkerPool.collect`.

    ``kind`` is ``"done"`` (``result`` set), ``"failed"`` (``error`` set:
    the task exhausted its retries on dying workers), or ``"retried"``
    (informational: the task was resubmitted after a worker death).
    """

    kind: str
    task_id: str
    result: Optional[UnitResult] = None
    error: str = ""
    worker_id: int = -1
    cache_entries: List[dict] = field(default_factory=list)


class WarmWorkerPool:
    """A fixed-size pool of warm checker processes with death recovery."""

    def __init__(self, workers: int, checker: Optional[CheckerConfig] = None,
                 cache: Optional[SolverQueryCache] = None,
                 cache_capacity: int = 100_000,
                 escalation_factors: Tuple[float, ...] = (4.0, 16.0),
                 start_method: Optional[str] = None,
                 max_retries: int = 1,
                 completed_history: int = 4096,
                 ops: Optional[Ops] = None) -> None:
        if workers <= 0:
            raise ValueError("a warm pool needs at least one worker")
        if start_method is None:
            start_method = "fork" \
                if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.workers = workers
        self.checker = checker if checker is not None else CheckerConfig()
        self.cache = cache
        self.cache_capacity = cache_capacity
        self.escalation_factors = tuple(escalation_factors)
        self.max_retries = max_retries
        self.deaths = 0                       # workers lost over the lifetime
        self.ops = ops                        # operational event sink (or None)
        self._context = multiprocessing.get_context(start_method)
        self._result_queue = self._context.Queue()
        self._processes: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._task_queues: Dict[int, object] = {}
        self._assigned: Dict[int, List[str]] = {}
        self._worker_state: Dict[int, str] = {}
        self._worker_units: Dict[int, int] = {}
        self._worker_restarts: Dict[int, int] = {}
        # Guards the worker-tracking dicts only: the daemon's status op reads
        # worker_summary() from a client-reader thread while the collector
        # thread reaps and respawns.
        self._meta_lock = threading.Lock()
        self._tasks: Dict[str, _Task] = {}
        # Recently completed task ids, for duplicate-submit detection.  A
        # bounded ring, not a full history: the daemon processes millions of
        # units over its lifetime and an ever-growing set would be a leak.
        self._completed: set = set()
        self._completed_order: Deque[str] = deque()
        self._completed_history = max(1, completed_history)
        self._next_worker_id = 0
        self._closed = False
        for _ in range(workers):
            self._spawn_worker()

    # -- lifecycle ---------------------------------------------------------------

    def _emit(self, level: str, event: str, dump: bool = False,
              **fields) -> None:
        if self.ops is not None:
            self.ops.emit(level, "pool", event, dump=dump, **fields)

    def _spawn_worker(self, restarts: int = 0) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._context.Queue()
        seed = self.cache.snapshot() if self.cache is not None else None
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue, self.checker,
                  seed, self.cache_capacity, self.escalation_factors),
            daemon=True)
        process.start()
        with self._meta_lock:
            self._processes[worker_id] = process
            self._task_queues[worker_id] = task_queue
            self._assigned[worker_id] = []
            self._worker_state[worker_id] = "idle"
            self._worker_units[worker_id] = 0
            self._worker_restarts[worker_id] = restarts
        self._emit("info", "worker-spawned", worker=worker_id,
                   pid=process.pid, restarts=restarts,
                   cache_seed=len(seed) if seed else 0)
        return worker_id

    def worker_summary(self) -> List[dict]:
        """Per-live-worker operational detail, for the ``status`` op."""
        with self._meta_lock:
            return [{"worker": worker_id,
                     "pid": self._processes[worker_id].pid,
                     "state": self._worker_state.get(worker_id, "idle"),
                     "units_done": self._worker_units.get(worker_id, 0),
                     "restarts": self._worker_restarts.get(worker_id, 0)}
                    for worker_id in sorted(self._processes)]

    @property
    def worker_pids(self) -> List[int]:
        with self._meta_lock:
            return [process.pid for process in self._processes.values()
                    if process.pid is not None]

    @property
    def outstanding(self) -> int:
        """Tasks submitted and not yet resolved (done or failed)."""
        return len(self._tasks)

    def has_capacity(self, slack: int = 1) -> bool:
        """True while dispatching more work keeps every worker busy without
        queueing more than ``slack`` extra tasks per worker."""
        return self.outstanding < self.workers * (1 + slack)

    # -- submission --------------------------------------------------------------

    def submit(self, task_id: str, unit: WorkUnit,
               config: Optional[CheckerConfig] = None) -> None:
        """Queue one unit on the least-loaded worker."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if task_id in self._tasks or task_id in self._completed:
            raise ValueError(f"duplicate task id {task_id!r}")
        task = _Task(task_id=task_id, unit=unit, config=config)
        self._tasks[task_id] = task
        self._dispatch(task)

    def _mark_completed(self, task_id: str) -> None:
        if task_id in self._completed:
            return
        self._completed.add(task_id)
        self._completed_order.append(task_id)
        while len(self._completed_order) > self._completed_history:
            self._completed.discard(self._completed_order.popleft())

    def _dispatch(self, task: _Task) -> None:
        worker_id = min(self._assigned,
                        key=lambda wid: (len(self._assigned[wid]), wid))
        task.worker_id = worker_id
        task.started = False
        self._assigned[worker_id].append(task.task_id)
        self._task_queues[worker_id].put((task.task_id, task.unit, task.config))

    # -- collection --------------------------------------------------------------

    def collect(self, timeout: float = 0.1) -> List[PoolEvent]:
        """Drain finished work and recover from worker deaths.

        Blocks up to ``timeout`` seconds for the first message, then drains
        whatever else is immediately available.  Always checks worker
        liveness, so a death with no message traffic is still detected on
        the next call.
        """
        if self._closed:
            return []
        events: List[PoolEvent] = []
        deadline = time.monotonic() + timeout
        first = True
        while True:
            remaining = deadline - time.monotonic()
            if not first and remaining <= 0:
                break
            try:
                message = self._result_queue.get(
                    timeout=max(0.0, remaining) if first else 0.0)
            except queue_module.Empty:
                break
            first = False
            events.extend(self._handle_message(message))
        events.extend(self._reap_dead_workers())
        return events

    def _handle_message(self, message) -> List[PoolEvent]:
        kind, worker_id, task_id, payload = message
        if kind == "start":
            task = self._tasks.get(task_id)
            if task is not None and task.worker_id == worker_id:
                task.started = True
            if worker_id in self._worker_state:
                self._worker_state[worker_id] = "busy"
            self._emit("debug", "task-started", worker=worker_id,
                       task=task_id)
            return []
        if kind == "bye":
            return []
        # kind == "done"
        if worker_id in self._worker_state:
            self._worker_state[worker_id] = "idle"
            self._worker_units[worker_id] += 1
        task = self._tasks.pop(task_id, None)
        if task is None:                      # duplicate after a retry raced
            return []
        self._mark_completed(task_id)
        self._emit("debug", "task-done", worker=worker_id, task=task_id)
        if task_id in self._assigned.get(task.worker_id, []):
            self._assigned[task.worker_id].remove(task_id)
        result: UnitResult = payload
        entries = result.cache_entries
        result.cache_entries = []
        if self.cache is not None and entries:
            self.cache.absorb(entries)
        return [PoolEvent(kind="done", task_id=task_id, result=result,
                          worker_id=worker_id, cache_entries=entries)]

    def _reap_dead_workers(self) -> List[PoolEvent]:
        events: List[PoolEvent] = []
        for worker_id, process in list(self._processes.items()):
            if process.is_alive():
                continue
            self.deaths += 1
            orphaned = [self._tasks[tid] for tid in self._assigned[worker_id]
                        if tid in self._tasks]
            dead_pid = process.pid
            dead_restarts = self._worker_restarts.get(worker_id, 0)
            with self._meta_lock:
                del self._processes[worker_id]
                del self._task_queues[worker_id]
                del self._assigned[worker_id]
                self._worker_state.pop(worker_id, None)
                self._worker_units.pop(worker_id, None)
                self._worker_restarts.pop(worker_id, None)
            # The death dump is the flight recorder's reason to exist: it
            # carries the dying unit's whole event trail out of the ring.
            self._emit("error", "worker-died", dump=True, worker=worker_id,
                       pid=dead_pid, exitcode=process.exitcode,
                       orphaned=[task.task_id for task in orphaned],
                       deaths=self.deaths)
            if not self._closed:
                # The replacement inherits the dead worker's restart count:
                # "restarts" answers "how many processes has this slot
                # burned", not "how often was this specific pid replaced".
                self._spawn_worker(restarts=dead_restarts + 1)
            for task in orphaned:
                if task.retries >= self.max_retries:
                    del self._tasks[task.task_id]
                    self._mark_completed(task.task_id)
                    self._emit("error", "task-failed", task=task.task_id,
                               worker=worker_id, retries=task.retries)
                    events.append(PoolEvent(
                        kind="failed", task_id=task.task_id,
                        error=f"worker {worker_id} died "
                              f"({task.retries} retries exhausted)",
                        worker_id=worker_id))
                    continue
                task.retries += 1
                # A crash-looping unit must not kill its replacement too.
                if task.unit.meta.get(CRASH_META_KEY):
                    task.unit.meta = {k: v for k, v in task.unit.meta.items()
                                      if k != CRASH_META_KEY}
                self._dispatch(task)
                self._emit("warn", "task-retried", task=task.task_id,
                           worker=worker_id, retries=task.retries)
                events.append(PoolEvent(kind="retried", task_id=task.task_id,
                                        worker_id=worker_id))
        return events

    def drain(self, on_event: Optional[Callable[[PoolEvent], None]] = None,
              timeout: float = 60.0) -> List[PoolEvent]:
        """Collect until no task is outstanding (or ``timeout`` elapses)."""
        collected: List[PoolEvent] = []
        deadline = time.monotonic() + timeout
        while self._tasks and time.monotonic() < deadline:
            for event in self.collect(timeout=0.1):
                collected.append(event)
                if on_event is not None:
                    on_event(event)
        return collected

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop every worker; with ``drain``, let queued tasks finish first."""
        if self._closed:
            return
        if drain:
            self.drain(timeout=timeout)
        self._closed = True
        for worker_id, task_queue in self._task_queues.items():
            try:
                task_queue.put(None)
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for process in list(self._processes.values()):
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        with self._meta_lock:
            self._processes.clear()
            self._task_queues.clear()
            self._assigned.clear()
            self._worker_state.clear()
            self._worker_units.clear()
            self._worker_restarts.clear()
        self._result_queue.close()
        self._result_queue.join_thread()
        self._emit("info", "pool-closed", drained=drain, deaths=self.deaths)

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close(drain=False)


__all__ = ["CRASH_META_KEY", "PoolEvent", "TEST_HOOKS_ENV", "WarmWorkerPool"]
