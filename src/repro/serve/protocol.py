"""Wire protocol of the always-on checking service.

The daemon (:mod:`repro.serve.server`) and its clients speak **line-delimited
JSON** over a local stream socket: every message is one JSON object encoded
as UTF-8 and terminated by ``"\\n"``.  The framing is deliberately the same
as the engine's JSONL result files — a served job's result stream *is* a
JSONL stream, just arriving over a socket instead of from a file — so the
tooling that post-processes ``results_path`` files (``jq``, dataframes,
the benchmarks' verdict-identity checks) works on captured job streams
unchanged.

Client → server messages carry an ``op`` key::

    {"op": "hello",  "client": "ci-fleet", "proto": 1}
    {"op": "submit", "units": [{"name": "a.c", "source": "..."}],
     "priority": 5, "checker": {"solver_timeout": 5.0}}
    {"op": "cancel", "job": "job-3"}
    {"op": "status"}
    {"op": "ping"}
    {"op": "drain"}

Server → client messages carry a ``type`` key.  Operation replies
(``welcome``, ``accepted``, ``rejected``, ``cancel-ok``, ``status``,
``pong``, ``draining``, ``error``) answer the op that triggered them, in
order.  Job output arrives interleaved with replies as it is produced::

    {"type": "result", "job": "job-3", "record": { ... }}
    {"type": "job-done", "job": "job-3", "status": "ok"}

The ``record`` inside a ``result`` message reuses the
:mod:`repro.engine.sink` record schema **verbatim** — per-unit ``unit``
records exactly as :func:`repro.engine.sink.report_to_dict` builds them,
followed by one ``run`` summary record per job — so a client that appends
each ``record`` to a file reproduces what a batch engine run would have
written to ``results_path``.

Only plain JSON types cross the wire; sources travel as text and modules
are compiled inside the warm workers.  See docs/SERVE.md for the full
message tables.
"""

from __future__ import annotations

import dataclasses
import json
import socket
from typing import Dict, List, Optional, Sequence

from repro.core.checker import CheckerConfig
from repro.engine.workunit import WorkUnit

#: Protocol revision; bumped on incompatible message changes.
PROTOCOL_VERSION = 1

#: Hard bound on one framed line.  Generous — a submit message carries a
#: whole batch of sources — but finite, so a peer cannot exhaust server
#: memory by streaming bytes that never contain a newline.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Checker fields a job may override per submission.  A whitelist keeps the
#: wire surface reviewable: everything else comes from the server's default
#: checker configuration.
CHECKER_OVERRIDES = (
    "solver_timeout",
    "max_conflicts",
    "incremental",
    "inline",
    "validate_witnesses",
    "witness_seed",
    "repair",
    "classify",
    "minimize_ub_sets",
)

#: Client → server operations.
OPS = ("hello", "submit", "cancel", "status", "metrics", "ping", "drain")

#: Server → client message types that answer one operation, in order.
REPLY_TYPES = ("welcome", "accepted", "rejected", "cancel-ok", "status",
               "metrics", "pong", "draining", "error")

#: Server → client message types that belong to a job stream.
STREAM_TYPES = ("result", "job-done")


class ProtocolError(Exception):
    """A malformed or out-of-protocol message."""


def encode(message: Dict[str, object]) -> bytes:
    """One message, framed: compact JSON plus the line terminator."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, object]:
    """Parse one received line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    return message


def unit_to_wire(unit: WorkUnit) -> Dict[str, object]:
    """Serialize one work unit for submission (source units only)."""
    if unit.source is None:
        raise ProtocolError(
            f"unit {unit.name!r}: only source units cross the wire; "
            "lowered IR modules must be checked through the engine API")
    payload: Dict[str, object] = {"name": unit.name, "source": unit.source}
    if unit.filename and unit.filename != f"{unit.name}.c":
        payload["filename"] = unit.filename
    if unit.meta:
        payload["meta"] = dict(unit.meta)
    return payload


def unit_from_wire(payload: Dict[str, object]) -> WorkUnit:
    """Rebuild a work unit from its wire form (validating as we go)."""
    if not isinstance(payload, dict):
        raise ProtocolError("unit payload is not an object")
    name = payload.get("name")
    source = payload.get("source")
    if not isinstance(name, str) or not name:
        raise ProtocolError("unit payload needs a non-empty 'name'")
    if not isinstance(source, str):
        raise ProtocolError(f"unit {name!r} needs a 'source' string")
    meta = payload.get("meta") or {}
    if not isinstance(meta, dict):
        raise ProtocolError(f"unit {name!r}: 'meta' must be an object")
    filename = payload.get("filename") or ""
    if not isinstance(filename, str):
        raise ProtocolError(f"unit {name!r}: 'filename' must be a string")
    return WorkUnit(name=name, source=source, filename=filename,
                    meta=dict(meta))


#: Expected value type per overridable field, derived from the defaults so
#: the whitelist cannot drift from :class:`CheckerConfig` itself.
_OVERRIDE_TYPES: Dict[str, type] = {
    config_field.name: type(getattr(CheckerConfig(), config_field.name))
    for config_field in dataclasses.fields(CheckerConfig)
    if config_field.name in CHECKER_OVERRIDES
}


def _check_override_value(key: str, value: object) -> object:
    """Validate one override's type at submit time (bad values must be a
    submission-time rejection, not an opaque per-unit worker failure)."""
    expected = _OVERRIDE_TYPES[key]
    if expected is bool:
        valid = isinstance(value, bool)
    elif expected is int:
        valid = isinstance(value, int) and not isinstance(value, bool)
    elif expected is float:
        valid = isinstance(value, (int, float)) and not isinstance(value, bool)
        if valid:
            value = float(value)
    else:
        valid = isinstance(value, expected)
    if not valid:
        raise ProtocolError(
            f"checker override {key!r} must be {expected.__name__}, "
            f"got {type(value).__name__}")
    return value


def checker_from_wire(base: CheckerConfig,
                      overrides: Optional[Dict[str, object]]) -> CheckerConfig:
    """The server's default checker with a job's whitelisted overrides."""
    if not overrides:
        return base
    if not isinstance(overrides, dict):
        raise ProtocolError("'checker' must be an object")
    unknown = sorted(set(overrides) - set(CHECKER_OVERRIDES))
    if unknown:
        raise ProtocolError(
            f"checker overrides not allowed over the wire: {unknown}")
    checked = {key: _check_override_value(key, value)
               for key, value in overrides.items()}
    return dataclasses.replace(base, **checked)


def submit_message(units: Sequence[WorkUnit], priority: int = 0,
                   checker: Optional[Dict[str, object]] = None,
                   ) -> Dict[str, object]:
    """Build one ``submit`` operation for a batch of units."""
    message: Dict[str, object] = {
        "op": "submit",
        "units": [unit_to_wire(unit) for unit in units],
        "priority": int(priority),
    }
    if checker:
        message["checker"] = dict(checker)
    return message


class LineSocket:
    """Blocking line-framed JSON messaging over a connected socket.

    Used by the client and the server's per-connection reader; writes are
    atomic per message (one ``sendall``), reads buffer until a newline.
    A ``None`` return from :meth:`receive` means the peer closed the
    connection.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""

    def send(self, message: Dict[str, object]) -> None:
        self._sock.sendall(encode(message))

    def receive(self) -> Optional[Dict[str, object]]:
        while True:
            while b"\n" not in self._buffer:
                if len(self._buffer) > MAX_LINE_BYTES:
                    # Unrecoverable framing state: the rest of the stream is
                    # the same oversized line.  Drop the connection.
                    self._buffer = b""
                    self.close()
                    raise ProtocolError(
                        f"line exceeds {MAX_LINE_BYTES} bytes")
                try:
                    chunk = self._sock.recv(65536)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    return None
                if not chunk:
                    return None
                self._buffer += chunk
            line, self._buffer = self._buffer.split(b"\n", 1)
            if line.strip():                  # skip blank lines, iteratively
                return decode(line)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def require_op(message: Dict[str, object]) -> str:
    """Validate and return a client message's operation name."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    return op


def error_message(reason: str, detail: str = "") -> Dict[str, object]:
    return {"type": "error", "reason": reason, "detail": detail}


__all__ = [
    "CHECKER_OVERRIDES",
    "LineSocket",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REPLY_TYPES",
    "STREAM_TYPES",
    "checker_from_wire",
    "decode",
    "encode",
    "error_message",
    "require_op",
    "submit_message",
    "unit_from_wire",
    "unit_to_wire",
]
