"""The always-on checking service (``python -m repro serve``).

Everything a batch engine run pays on every invocation — interpreter boot,
pipeline imports, corpus loading, a cold solver-query cache and cold blast
memos — the daemon pays once.  :class:`~repro.serve.server.ServeServer`
holds a pool of warm checker processes resident, accepts check jobs over a
local socket speaking line-delimited JSON
(:mod:`repro.serve.protocol`), schedules units deterministically with
per-client priorities, quotas, and backpressure
(:mod:`repro.serve.scheduler`), and streams engine-schema result records
back per job.  :class:`~repro.serve.client.ServeClient` (and ``python -m
repro submit``) is the other end of the wire.

See docs/SERVE.md for the protocol tables, server configuration, and the
warm-vs-cold latency story.
"""

from repro.serve.client import (JobHandle, ServeClient, ServeError,
                                SubmitRejected, check_via_server)
from repro.serve.pool import PoolEvent, WarmWorkerPool
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.scheduler import AdmissionError, Job, JobScheduler
from repro.serve.server import ServeConfig, ServeServer
from repro.serve.top import render_dashboard

__all__ = [
    "AdmissionError",
    "Job",
    "JobHandle",
    "JobScheduler",
    "PROTOCOL_VERSION",
    "PoolEvent",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "SubmitRejected",
    "WarmWorkerPool",
    "check_via_server",
    "render_dashboard",
]
