"""Live terminal dashboard for the serve daemon (``python -m repro top``).

``repro top`` polls the daemon's ``status`` op (which carries the full
metrics snapshot, per-worker detail, and the most recent operational
events — see docs/SERVE.md) and renders one screenful per poll: queue
depth and in-flight counts, per-worker state, the warm-hit rate, a
unit-latency histogram sparkline, and the event tail.  ``--once`` prints a
single frame and exits; ``--once --json`` dumps the raw status reply for
scripts and the CI serve-smoke job.

:func:`render_dashboard` is a pure function of the status reply, so the
rendering is testable without a daemon.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, List, Mapping

__all__ = ["render_dashboard", "top_main"]

_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(counts: List[float]) -> str:
    peak = max(counts) if counts else 0
    if peak <= 0:
        return "▁" * max(1, len(counts))
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int(count / peak * (len(_SPARK) - 1) + 0.5))]
        for count in counts)


def _format_le(upper: Any) -> str:
    number = float(upper)
    if number == float("inf"):
        return "+Inf"
    if number >= 1:
        return f"{number:g}s"
    return f"{number * 1000:g}ms"


def _warm_hit_rate(counters: Mapping[str, Any]) -> str:
    queries = counters.get("serve.queries", 0)
    if not queries:
        return "n/a"
    return f"{100.0 * counters.get('serve.warm_hits', 0) / queries:.1f}%"


def render_dashboard(status: Mapping[str, Any]) -> str:
    """One status reply as a fixed-width text dashboard."""
    metrics = status.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    lines = [
        "repro serve — {state} · {clients} client(s) · {workers} worker(s) "
        "· {deaths} death(s)".format(
            state="draining" if status.get("draining") else "running",
            clients=status.get("clients", 0),
            workers=status.get("workers", 0),
            deaths=status.get("worker_deaths", 0)),
        "queue {depth:>5} queued · {in_flight:>3} in-flight · "
        "{jobs:>3} active job(s)".format(
            depth=status.get("queue_depth", 0),
            in_flight=status.get("in_flight", 0),
            jobs=status.get("active_jobs", 0)),
        "units {done:>5} completed · {retried} retried · {failed} failed · "
        "warm-hit rate {rate}".format(
            done=status.get("uptime_units", 0),
            retried=counters.get("serve.units_retried", 0),
            failed=counters.get("serve.units_failed", 0),
            rate=_warm_hit_rate(counters)),
        "cache {entries} entries · {slow} slow quer{y}".format(
            entries=status.get("cache_entries", 0),
            slow=counters.get("serve.slow_queries", 0),
            y="y" if counters.get("serve.slow_queries", 0) == 1 else "ies"),
    ]

    latency = histograms.get("serve.unit_latency")
    if latency:
        counts = [float(count) for count in latency.get("counts", ())]
        count = latency.get("count", 0)
        mean = latency.get("sum", 0.0) / count if count else 0.0
        buckets = list(latency.get("buckets", ()))
        span = f"{_format_le(buckets[0])}..{_format_le(buckets[-1])}" \
            if buckets else ""
        lines.append(f"unit latency {_sparkline(counts)}  "
                     f"{span}  mean {mean * 1000:.1f}ms over {count}")

    detail = status.get("workers_detail") or []
    if detail:
        lines.append("workers:")
        for worker in detail:
            lines.append(
                "  #{worker:<3} pid {pid:<8} {state:<5} "
                "{units_done:>5} unit(s) · {restarts} restart(s)".format(
                    worker=worker.get("worker", "?"),
                    pid=worker.get("pid", "?"),
                    state=worker.get("state", "?"),
                    units_done=worker.get("units_done", 0),
                    restarts=worker.get("restarts", 0)))

    events = status.get("recent_events") or []
    if events:
        lines.append("recent events:")
        for event in events:
            fields = event.get("fields", {})
            summary = " ".join(f"{key}={fields[key]}"
                               for key in sorted(fields))[:60]
            lines.append("  {level:<5} {component}/{event} {summary}".format(
                level=event.get("level", "?"),
                component=event.get("component", "?"),
                event=event.get("event", "?"),
                summary=summary).rstrip())
    return "\n".join(lines)


def top_main(args) -> int:
    """Entry point behind ``python -m repro top``."""
    from repro.serve.client import ServeClient, ServeError

    try:
        with ServeClient(args.socket, name="repro-top") as client:
            while True:
                status = client.status()
                if args.once:
                    if args.json:
                        print(json.dumps(status, sort_keys=True))
                    else:
                        print(render_dashboard(status))
                    return 0
                sys.stdout.write("\x1b[2J\x1b[H"    # clear screen, home
                                 + render_dashboard(status) + "\n")
                sys.stdout.flush()
                time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0
    except (ServeError, OSError) as exc:
        print(f"repro top: cannot reach daemon at {args.socket}: {exc}",
              file=sys.stderr)
        return 1
