"""Client for the checking daemon: submit jobs, stream results back.

:class:`ServeClient` is the programmatic side of ``python -m repro
submit``: connect to a running daemon's socket, submit batches of
translation units as jobs, and consume each job's result records as they
stream in.  A background reader thread demultiplexes the connection —
operation replies answer ops in order, ``result`` / ``job-done`` messages
land in bounded per-job queues — so several jobs can stream concurrently
over one connection.

Backpressure is end to end: records a caller has not consumed fill the
job's bounded queue, which stalls the reader thread, which fills the
kernel socket buffer, which fills the server-side outbox, which makes the
scheduler stop dispatching that client's units.  Reading slowly is
therefore all a client has to do to throttle the daemon.

Typical use::

    with ServeClient("repro-serve.sock") as client:
        job = client.submit([("a.c", SOURCE)], priority=5)
        for record in job.records():
            ...                      # engine-schema JSONL records, in order

:func:`check_via_server` wraps the whole round trip for one-shot callers.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.engine.workunit import WorkUnit
from repro.serve import protocol


class ServeError(Exception):
    """Connection-level or protocol-level client failure."""


class SubmitRejected(ServeError):
    """The daemon refused a submission (quota, queue bound, draining)."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


#: Anything convertible into a submission unit.
UnitLike = Union[WorkUnit, Tuple[str, str], str]

_DONE = object()


def _coerce_units(units: Iterable[UnitLike]) -> List[WorkUnit]:
    coerced: List[WorkUnit] = []
    for index, unit in enumerate(units):
        if isinstance(unit, WorkUnit):
            coerced.append(unit)
        elif isinstance(unit, tuple) and len(unit) == 2:
            coerced.append(WorkUnit(name=unit[0], source=unit[1]))
        elif isinstance(unit, str):
            coerced.append(WorkUnit(name=f"unit{index}", source=unit))
        else:
            raise TypeError(f"cannot submit a {type(unit).__name__}")
    return coerced


class JobHandle:
    """One submitted job: its id and the stream of its result records."""

    def __init__(self, client: "ServeClient", job_id: str, units: int,
                 capacity: int) -> None:
        self.client = client
        self.job_id = job_id
        self.units = units
        self.status: Optional[str] = None    # "ok" / "cancelled" once done
        self._queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=capacity)

    def records(self, timeout: Optional[float] = None,
                ) -> Iterator[Dict[str, object]]:
        """Yield this job's records (engine JSONL schema) until it is done.

        The final record of a completed job is its ``run`` summary.  Raises
        :class:`ServeError` if the connection drops mid-stream or
        ``timeout`` (per record) elapses.
        """
        while True:
            try:
                item = self._queue.get(timeout=timeout)
            except queue_module.Empty:
                raise ServeError(
                    f"{self.job_id}: no record within {timeout}s") from None
            if item is _DONE:
                return
            if isinstance(item, ServeError):
                raise item
            yield item

    def wait(self, timeout: Optional[float] = None) -> List[Dict[str, object]]:
        """Consume and return every remaining record of the job."""
        return list(self.records(timeout=timeout))

    def cancel(self) -> int:
        """Cancel this job on the server; returns dropped-unit count."""
        return self.client.cancel(self.job_id)

    # -- reader-side plumbing ---------------------------------------------------

    def _push(self, item: object) -> None:
        self._queue.put(item)


class ServeClient:
    """A connection to the checking daemon (see module docstring)."""

    def __init__(self, socket_path: str, name: str = "repro-client",
                 record_capacity: int = 1024,
                 connect_timeout: float = 10.0) -> None:
        self.socket_path = socket_path
        self.name = name
        self.record_capacity = record_capacity
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        try:
            self._sock.connect(socket_path)
        except OSError as exc:
            raise ServeError(
                f"cannot connect to daemon at {socket_path}: {exc}") from None
        self._sock.settimeout(None)
        self._line = protocol.LineSocket(self._sock)
        self._jobs: Dict[str, JobHandle] = {}
        self._replies: "queue_module.Queue" = queue_module.Queue()
        self._op_lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(target=self._read_loop, daemon=True,
                                        name="serve-client-reader")
        self._reader.start()
        self.server_info = self._op({"op": "hello", "client": name,
                                     "proto": protocol.PROTOCOL_VERSION},
                                    expect=("welcome",))

    # -- reader -----------------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            message = self._line.receive()
            if message is None:
                break
            kind = message.get("type")
            if kind == "result":
                job = self._jobs.get(message.get("job"))
                if job is not None:
                    job._push(message.get("record"))
            elif kind == "job-done":
                job = self._jobs.pop(message.get("job"), None)
                if job is not None:
                    job.status = message.get("status")
                    job._push(_DONE)
            elif kind == "accepted":
                # Register the handle HERE, on the reader thread, before the
                # next message is read: a warm-cache "result" or "job-done"
                # can follow "accepted" on the wire immediately, long before
                # the submitting thread dequeues the reply.  ``_jobs`` is
                # thereafter touched only by this thread.
                handle = JobHandle(self, str(message.get("job")),
                                   units=int(message.get("units", 0)),
                                   capacity=self.record_capacity)
                self._jobs[handle.job_id] = handle
                message["_handle"] = handle
                self._replies.put(message)
            elif kind == "draining" and self._closed:
                continue
            else:
                self._replies.put(message)
        self._closed = True
        error = ServeError("connection to daemon closed")
        for job in list(self._jobs.values()):
            job._push(error)
        self._jobs.clear()
        self._replies.put({"type": "error", "reason": "disconnected",
                           "detail": "connection to daemon closed"})

    def _op(self, message: Dict[str, object],
            expect: Tuple[str, ...], timeout: float = 60.0,
            ) -> Dict[str, object]:
        """Send one operation and return its (in-order) reply."""
        with self._op_lock:
            if self._closed:
                raise ServeError("client is closed")
            try:
                self._line.send(message)
            except OSError as exc:
                raise ServeError(f"send failed: {exc}") from None
            try:
                reply = self._replies.get(timeout=timeout)
            except queue_module.Empty:
                raise ServeError(
                    f"no reply to {message.get('op')!r} within {timeout}s",
                    ) from None
        kind = reply.get("type")
        if kind in expect:
            return reply
        if kind == "rejected":
            raise SubmitRejected(str(reply.get("reason")),
                                 str(reply.get("detail")))
        raise ServeError(f"unexpected reply {reply!r} to "
                         f"{message.get('op')!r}")

    # -- operations --------------------------------------------------------------

    def submit(self, units: Iterable[UnitLike], priority: int = 0,
               checker: Optional[Dict[str, object]] = None) -> JobHandle:
        """Submit one job; returns its handle once the daemon accepts it.

        Raises :class:`SubmitRejected` when the daemon refuses (per-client
        quota, global queue bound, or draining).  ``checker`` carries
        whitelisted per-job overrides (:data:`protocol.CHECKER_OVERRIDES`).
        """
        work = _coerce_units(units)
        message = protocol.submit_message(work, priority=priority,
                                          checker=checker)
        with self._op_lock:
            if self._closed:
                raise ServeError("client is closed")
            try:
                self._line.send(message)
                reply = self._replies.get(timeout=60.0)
            except (OSError, queue_module.Empty) as exc:
                raise ServeError(f"submit failed: {exc}") from None
            kind = reply.get("type")
            if kind == "accepted":
                # The reader thread built and registered the handle before
                # processing any of the job's stream messages (see
                # _read_loop); no record can race the registration.
                return reply["_handle"]
        if kind == "rejected":
            raise SubmitRejected(str(reply.get("reason")),
                                 str(reply.get("detail")))
        raise ServeError(f"unexpected reply {reply!r} to submit")

    def check(self, units: Iterable[UnitLike], priority: int = 0,
              checker: Optional[Dict[str, object]] = None,
              timeout: Optional[float] = 300.0) -> List[Dict[str, object]]:
        """Submit and wait: returns the job's full record list."""
        return self.submit(units, priority=priority,
                           checker=checker).wait(timeout=timeout)

    def cancel(self, job_id: str) -> int:
        reply = self._op({"op": "cancel", "job": job_id},
                         expect=("cancel-ok", "error"))
        if reply.get("type") == "error":
            raise ServeError(str(reply.get("detail")))
        return int(reply.get("dropped", 0))

    def status(self) -> Dict[str, object]:
        """The daemon's live status (queue depth, workers, metrics)."""
        return self._op({"op": "status"}, expect=("status",))

    def metrics(self) -> Dict[str, object]:
        """The daemon's metrics: Prometheus ``text`` plus raw ``snapshot``."""
        return self._op({"op": "metrics"}, expect=("metrics",))

    def ping(self) -> bool:
        return self._op({"op": "ping"}, expect=("pong",)).get("type") == "pong"

    def drain(self) -> None:
        """Ask the daemon to drain and shut down gracefully."""
        self._op({"op": "drain"}, expect=("draining",))

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._line.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def check_via_server(socket_path: str, units: Iterable[UnitLike],
                     priority: int = 0,
                     checker: Optional[Dict[str, object]] = None,
                     name: str = "repro-client",
                     timeout: Optional[float] = 300.0,
                     ) -> List[Dict[str, object]]:
    """One-shot convenience: connect, submit, stream, disconnect."""
    with ServeClient(socket_path, name=name) as client:
        return client.check(units, priority=priority, checker=checker,
                            timeout=timeout)


__all__ = ["JobHandle", "ServeClient", "ServeError", "SubmitRejected",
           "check_via_server"]
