"""The compiler survey of §2.3 (Figure 4).

For each compiler profile and each of the six unstable sanity checks, find
the lowest ``-O`` level at which the simulated optimizer folds the check away
and discards the guarded statement.  Discarding is detected mechanically: the
guarded statement returns a distinctive marker constant, and after running
the profile's pass pipeline the survey looks for a surviving ``ret`` of that
marker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compilers.pipeline import OptimizationPipeline
from repro.compilers.profiles import ALL_PROFILES, CompilerProfile
from repro.ir.function import Module
from repro.ir.instructions import Return
from repro.ir.values import Constant

#: Marker constant returned by the guarded statement in every example.
MARKER = 123456789


@dataclass(frozen=True)
class SurveyExample:
    """One column of Figure 4."""

    key: str
    label: str
    source: str


#: The six unstable sanity checks of Figure 4 (§2.2), in column order.
SURVEY_EXAMPLES: List[SurveyExample] = [
    SurveyExample(
        "pointer", "if (p + 100 < p)",
        f"""
        int check(char *p) {{
            if (p + 100 < p) return {MARKER};
            return 0;
        }}
        """),
    SurveyExample(
        "null", "*p; if (!p)",
        f"""
        int check(int *p) {{
            int x = *p;
            if (!p) return {MARKER};
            return x;
        }}
        """),
    SurveyExample(
        "signed", "if (x + 100 < x)",
        f"""
        int check(int x) {{
            if (x + 100 < x) return {MARKER};
            return 0;
        }}
        """),
    SurveyExample(
        "signed-positive", "if (x+ + 100 < 0)",
        f"""
        int check(int x) {{
            if (x <= 0) return 0;
            if (x + 100 < 0) return {MARKER};
            return 1;
        }}
        """),
    SurveyExample(
        "shift", "if (!(1 << x))",
        f"""
        int check(int x) {{
            if (!(1 << x)) return {MARKER};
            return 0;
        }}
        """),
    SurveyExample(
        "abs", "if (abs(x) < 0)",
        f"""
        int check(int x) {{
            if (abs(x) < 0) return {MARKER};
            return 0;
        }}
        """),
]

#: The matrix the paper reports (Figure 4): compiler -> example key -> level.
PAPER_FIGURE4: Dict[str, Dict[str, Optional[int]]] = {
    "gcc-2.95.3":      {"pointer": None, "null": None, "signed": 1, "signed-positive": None, "shift": None, "abs": None},
    "gcc-3.4.6":       {"pointer": None, "null": 2, "signed": 1, "signed-positive": None, "shift": None, "abs": None},
    "gcc-4.2.1":       {"pointer": 0, "null": None, "signed": 2, "signed-positive": None, "shift": None, "abs": 2},
    "gcc-4.8.1":       {"pointer": 2, "null": 2, "signed": 2, "signed-positive": 2, "shift": None, "abs": 2},
    "clang-1.0":       {"pointer": 1, "null": None, "signed": None, "signed-positive": None, "shift": None, "abs": None},
    "clang-3.3":       {"pointer": 1, "null": None, "signed": 1, "signed-positive": None, "shift": 1, "abs": None},
    "aCC-6.25":        {"pointer": None, "null": None, "signed": None, "signed-positive": None, "shift": None, "abs": 3},
    "armcc-5.02":      {"pointer": None, "null": None, "signed": 2, "signed-positive": None, "shift": None, "abs": None},
    "icc-14.0.0":      {"pointer": None, "null": 2, "signed": 1, "signed-positive": 2, "shift": None, "abs": None},
    "msvc-11.0":       {"pointer": None, "null": 1, "signed": None, "signed-positive": None, "shift": None, "abs": None},
    "open64-4.5.2":    {"pointer": 1, "null": None, "signed": 2, "signed-positive": None, "shift": None, "abs": 2},
    "pathcc-1.0.0":    {"pointer": 1, "null": None, "signed": 2, "signed-positive": None, "shift": None, "abs": 2},
    "suncc-5.12":      {"pointer": None, "null": 3, "signed": None, "signed-positive": None, "shift": None, "abs": None},
    "ti-7.4.2":        {"pointer": 0, "null": None, "signed": 0, "signed-positive": 2, "shift": None, "abs": None},
    "windriver-5.9.2": {"pointer": None, "null": None, "signed": 0, "signed-positive": None, "shift": None, "abs": None},
    "xlc-12.1":        {"pointer": 3, "null": None, "signed": None, "signed-positive": None, "shift": None, "abs": None},
}


@dataclass
class SurveyResult:
    """The regenerated Figure 4 matrix."""

    #: compiler name -> example key -> lowest level that discards (None = never).
    matrix: Dict[str, Dict[str, Optional[int]]] = field(default_factory=dict)
    examples: Sequence[SurveyExample] = field(default_factory=lambda: SURVEY_EXAMPLES)

    def cell(self, compiler: str, example_key: str) -> Optional[int]:
        return self.matrix.get(compiler, {}).get(example_key)

    def matches_paper(self) -> bool:
        """True iff every cell agrees with the paper's Figure 4."""
        return not self.mismatches()

    def mismatches(self) -> List[str]:
        problems: List[str] = []
        for compiler, row in PAPER_FIGURE4.items():
            for key, expected in row.items():
                actual = self.cell(compiler, key)
                if actual != expected:
                    problems.append(
                        f"{compiler}/{key}: paper says "
                        f"{_cell_text(expected)}, survey got {_cell_text(actual)}")
        return problems


def _cell_text(level: Optional[int]) -> str:
    return "-" if level is None else f"O{level}"


def _fresh_module(example: SurveyExample) -> Module:
    from repro.api import compile_source

    return compile_source(example.source, filename=f"survey_{example.key}.c")


def _check_survives(module: Module) -> bool:
    """Does any surviving return still produce the marker constant?"""
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, Return) and isinstance(inst.value, Constant) \
                    and inst.value.value == MARKER:
                return True
    return False


def discard_level(profile: CompilerProfile, example: SurveyExample,
                  max_level: int = 3) -> Optional[int]:
    """The lowest -O level at which ``profile`` discards the example's check."""
    for level in range(0, max_level + 1):
        module = _fresh_module(example)
        pipeline = OptimizationPipeline(capabilities=profile.capabilities_at(level))
        pipeline.run_module(module)
        if not _check_survives(module):
            return level
    return None


def run_survey(profiles: Sequence[CompilerProfile] = tuple(ALL_PROFILES),
               examples: Sequence[SurveyExample] = tuple(SURVEY_EXAMPLES),
               max_level: int = 3) -> SurveyResult:
    """Regenerate the Figure 4 matrix by running the pass pipelines."""
    result = SurveyResult(examples=list(examples))
    for profile in profiles:
        row: Dict[str, Optional[int]] = {}
        for example in examples:
            row[example.key] = discard_level(profile, example, max_level)
        result.matrix[profile.name] = row
    return result


def survey_matrix(result: Optional[SurveyResult] = None) -> str:
    """Render the survey as the text table of Figure 4."""
    if result is None:
        result = run_survey()
    header = ["compiler"] + [example.label for example in result.examples]
    widths = [max(18, len(header[0]))] + [max(16, len(h)) for h in header[1:]]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for compiler in result.matrix:
        cells = [compiler.ljust(widths[0])]
        for example, width in zip(result.examples, widths[1:]):
            cells.append(_cell_text(result.cell(compiler, example.key)).ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
