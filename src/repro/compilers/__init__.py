"""Simulated compilers for the paper's optimization survey (§2.3, Figure 4).

The paper tests 12 real C/C++ compilers (16 versions) on six unstable sanity
checks and records the lowest ``-O`` level at which each compiler folds the
check away.  Real 2013-era compilers are obviously not available here, so the
reproduction models each compiler version as an *optimization pipeline*: a
set of UB-exploiting transformation capabilities, each enabled starting at a
particular optimization level.  The capabilities themselves are implemented
as genuine IR passes (:mod:`repro.compilers.passes`); the per-compiler
capability table (:mod:`repro.compilers.profiles`) is calibrated from the
observations reported in Figure 4.  Re-running the survey therefore exercises
the passes mechanically rather than replaying a lookup table.
"""

from repro.compilers.passes import (
    Capability,
    NullCheckEliminationPass,
    OptimizationContext,
    SimplifyCfgPass,
    UBAwareInstSimplifyPass,
    ValueRangeAnalysis,
)
from repro.compilers.pipeline import OptimizationPipeline, optimize_function
from repro.compilers.profiles import ALL_PROFILES, CompilerProfile, profile_by_name
from repro.compilers.survey import SurveyResult, run_survey, survey_matrix

__all__ = [
    "ALL_PROFILES",
    "Capability",
    "CompilerProfile",
    "NullCheckEliminationPass",
    "OptimizationContext",
    "OptimizationPipeline",
    "SimplifyCfgPass",
    "SurveyResult",
    "UBAwareInstSimplifyPass",
    "ValueRangeAnalysis",
    "optimize_function",
    "profile_by_name",
    "run_survey",
    "survey_matrix",
]
