"""Optimization passes that exploit undefined behavior.

These are the transformations the paper's compiler survey observes in the
wild (§2.2–2.3): folding a sanity check to a constant because the C standard
says the input that would make it true cannot occur in a well-defined
program.  Each transformation is gated on a :class:`Capability`, so a
compiler profile can enable them selectively per optimization level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.dominators import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Cast,
    CastKind,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Instruction,
    Load,
    Phi,
    Store,
)
from repro.ir.types import IntType
from repro.ir.values import Constant, Value


class Capability(enum.Enum):
    """UB-exploiting optimization capabilities (the columns of Figure 4)."""

    POINTER_OVERFLOW_FOLD = "fold p + c < p using no-pointer-overflow"
    NULL_CHECK_ELIMINATION = "remove null checks dominated by a dereference"
    SIGNED_OVERFLOW_FOLD = "fold x + c < x using no-signed-overflow"
    VALUE_RANGE_SIGNED = "value-range reasoning with no-signed-overflow"
    OVERSIZED_SHIFT_FOLD = "fold 1 << x != 0 using no-oversized-shift"
    ABS_FOLD = "fold abs(x) < 0 using library semantics"
    ALGEBRAIC_POINTER_REWRITE = "rewrite p + x < p into x < 0"


@dataclass
class OptimizationContext:
    """What the optimizer is allowed to assume / able to do."""

    capabilities: Set[Capability] = field(default_factory=set)
    #: Statistics: how many checks each pass folded.
    folded_comparisons: int = 0
    removed_blocks: int = 0

    def has(self, capability: Capability) -> bool:
        return capability in self.capabilities


def _const_i1(value: bool) -> Constant:
    return Constant(IntType(1, signed=False), int(value))


def _is_zero_constant(value: Value) -> bool:
    return isinstance(value, Constant) and value.value == 0


def _positive_constant(value: Value) -> Optional[int]:
    if isinstance(value, Constant) and value.value > 0:
        return value.value
    return None


def _strip_casts(value: Value) -> Value:
    while isinstance(value, Cast):
        value = value.value
    return value


class ValueRangeAnalysis:
    """Flow-sensitive sign facts derived from dominating branch conditions.

    This is a miniature version of gcc 4.x's value-range propagation (the
    paper credits VRP for gcc's increased aggressiveness, §2.3): for each
    block it records which values are known positive / non-negative /
    negative because a dominating conditional branch tested them.
    """

    def __init__(self, function: Function) -> None:
        self.function = function
        self.dominators = DominatorTree(function)
        self._facts: Dict[int, Set[Tuple[int, str]]] = {}
        self._compute()

    def _compute(self) -> None:
        for block in self.function.blocks:
            facts: Set[Tuple[int, str]] = set()
            for dom in self.dominators.dominators_of(block):
                if dom is block:
                    continue
                terminator = dom.terminator
                if not isinstance(terminator, CondBranch):
                    continue
                condition = terminator.condition
                if not isinstance(condition, ICmp):
                    continue
                # Which successor leads (only) toward `block`?
                true_path = self.dominators.dominates(terminator.if_true, block) \
                    and not self.dominators.dominates(terminator.if_false, block)
                false_path = self.dominators.dominates(terminator.if_false, block) \
                    and not self.dominators.dominates(terminator.if_true, block)
                if not (true_path or false_path):
                    continue
                facts.update(self._facts_from(condition, taken=true_path))
            self._facts[id(block)] = facts

    @staticmethod
    def _facts_from(cmp: ICmp, taken: bool) -> Set[Tuple[int, str]]:
        facts: Set[Tuple[int, str]] = set()
        lhs, rhs, pred = cmp.lhs, cmp.rhs, cmp.pred
        if not _is_zero_constant(rhs):
            return facts
        mapping_true = {
            ICmpPred.SGT: "positive", ICmpPred.SGE: "non-negative",
            ICmpPred.SLT: "negative", ICmpPred.SLE: "non-positive",
        }
        mapping_false = {
            ICmpPred.SLE: "positive", ICmpPred.SLT: "non-negative",
            ICmpPred.SGE: "negative", ICmpPred.SGT: "non-positive",
        }
        mapping = mapping_true if taken else mapping_false
        fact = mapping.get(pred)
        if fact is not None:
            facts.add((id(_strip_casts(lhs)), fact))
        return facts

    def is_known(self, block: BasicBlock, value: Value, fact: str) -> bool:
        return (id(_strip_casts(value)), fact) in self._facts.get(id(block), set())


class UBAwareInstSimplifyPass:
    """Folds comparisons to constants using undefined-behavior assumptions."""

    name = "instsimplify"

    def run(self, function: Function, context: OptimizationContext) -> int:
        ranges = ValueRangeAnalysis(function) if \
            context.has(Capability.VALUE_RANGE_SIGNED) else None
        dominators = DominatorTree(function)
        folded = 0
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, ICmp):
                    continue
                replacement = self._fold(inst, block, context, ranges, dominators,
                                         function)
                if replacement is None:
                    continue
                self._replace_uses(function, inst, replacement)
                # Retire the folded comparison, as a real compiler would:
                # leaving it in place would re-match the rule every
                # iteration and the pipeline would never reach a fixed
                # point (its statistics counted each re-fold).
                block.instructions.remove(inst)
                folded += 1
        context.folded_comparisons += folded
        return folded

    # -- folding rules ---------------------------------------------------------------

    def _fold(self, inst: ICmp, block: BasicBlock, context: OptimizationContext,
              ranges: Optional[ValueRangeAnalysis], dominators: DominatorTree,
              function: Function) -> Optional[Constant]:
        rule_sets = (
            self._fold_pointer_overflow,
            self._fold_signed_overflow,
            self._fold_value_range,
            self._fold_shift,
            self._fold_abs,
        )
        for rule in rule_sets:
            result = rule(inst, block, context, ranges)
            if result is not None:
                return result
        if context.has(Capability.NULL_CHECK_ELIMINATION):
            return self._fold_null_check(inst, dominators, function)
        return None

    def _fold_pointer_overflow(self, inst: ICmp, block, context,
                               ranges) -> Optional[Constant]:
        if not context.has(Capability.POINTER_OVERFLOW_FOLD):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        for compound, other, smaller_when_true in (
                (lhs, rhs, True), (rhs, lhs, False)):
            if not isinstance(compound, GetElementPtr):
                continue
            if compound.pointer is not other:
                continue
            index = _strip_casts(compound.index)
            offset = _positive_constant(index)
            unsigned_index = isinstance(compound.index, Cast) and \
                compound.index.kind is CastKind.ZEXT
            if offset is None and not unsigned_index:
                continue
            # p + nonneg  is never (unsigned) below p under no-pointer-overflow.
            if inst.pred is ICmpPred.ULT and smaller_when_true:
                return _const_i1(False)
            if inst.pred is ICmpPred.UGE and smaller_when_true:
                return _const_i1(True)
            if inst.pred is ICmpPred.UGT and not smaller_when_true:
                return _const_i1(False)
            if inst.pred is ICmpPred.ULE and not smaller_when_true:
                return _const_i1(True)
        return None

    def _fold_signed_overflow(self, inst: ICmp, block, context,
                              ranges) -> Optional[Constant]:
        if not context.has(Capability.SIGNED_OVERFLOW_FOLD):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        for compound, other, smaller_when_true in (
                (lhs, rhs, True), (rhs, lhs, False)):
            if not isinstance(compound, BinaryOp) or compound.kind is not BinOpKind.ADD:
                continue
            if not (compound.type.is_integer() and compound.type.signed):
                continue
            base, addend = None, None
            if compound.lhs is other:
                base, addend = compound.lhs, compound.rhs
            elif compound.rhs is other:
                base, addend = compound.rhs, compound.lhs
            if base is None or _positive_constant(addend) is None:
                continue
            # x + positive_const compared against x: no overflow means the sum
            # is strictly larger.
            if inst.pred in (ICmpPred.SLT, ICmpPred.SLE) and smaller_when_true:
                return _const_i1(False)
            if inst.pred in (ICmpPred.SGT, ICmpPred.SGE) and smaller_when_true:
                return _const_i1(True)
            if inst.pred in (ICmpPred.SGT, ICmpPred.SGE) and not smaller_when_true:
                return _const_i1(False)
            if inst.pred in (ICmpPred.SLT, ICmpPred.SLE) and not smaller_when_true:
                return _const_i1(True)
        return None

    def _fold_value_range(self, inst: ICmp, block, context,
                          ranges: Optional[ValueRangeAnalysis]) -> Optional[Constant]:
        if ranges is None or not context.has(Capability.SIGNED_OVERFLOW_FOLD):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        if not _is_zero_constant(rhs):
            return None
        if not isinstance(lhs, BinaryOp) or lhs.kind is not BinOpKind.ADD:
            return None
        if not (lhs.type.is_integer() and lhs.type.signed):
            return None
        base, addend = lhs.lhs, lhs.rhs
        if _positive_constant(addend) is None:
            base, addend = lhs.rhs, lhs.lhs
        if _positive_constant(addend) is None:
            return None
        if not (ranges.is_known(block, base, "positive")
                or ranges.is_known(block, base, "non-negative")):
            return None
        # positive + positive constant cannot be negative without overflow.
        if inst.pred is ICmpPred.SLT:
            return _const_i1(False)
        if inst.pred is ICmpPred.SGE:
            return _const_i1(True)
        return None

    def _fold_shift(self, inst: ICmp, block, context, ranges) -> Optional[Constant]:
        if not context.has(Capability.OVERSIZED_SHIFT_FOLD):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        if not _is_zero_constant(rhs):
            return None
        if not isinstance(lhs, BinaryOp) or lhs.kind is not BinOpKind.SHL:
            return None
        base = lhs.lhs
        if not (isinstance(base, Constant) and base.value != 0):
            return None
        # (nonzero << x) == 0 only via an oversized shift, which is assumed away.
        if inst.pred is ICmpPred.EQ:
            return _const_i1(False)
        if inst.pred is ICmpPred.NE:
            return _const_i1(True)
        return None

    def _fold_abs(self, inst: ICmp, block, context, ranges) -> Optional[Constant]:
        if not context.has(Capability.ABS_FOLD):
            return None
        lhs, rhs = inst.lhs, inst.rhs
        if not _is_zero_constant(rhs):
            return None
        source = _strip_casts(lhs)
        if not (isinstance(source, Call) and source.callee in ("abs", "labs")):
            return None
        # abs() is non-negative unless it overflows, which is assumed away.
        if inst.pred is ICmpPred.SLT:
            return _const_i1(False)
        if inst.pred is ICmpPred.SGE:
            return _const_i1(True)
        return None

    def _fold_null_check(self, inst: ICmp, dominators: DominatorTree,
                         function: Function) -> Optional[Constant]:
        lhs, rhs = inst.lhs, inst.rhs
        pointer = None
        if rhs.type.is_pointer() and _is_zero_constant(lhs):
            pointer = rhs
        elif lhs.type.is_pointer() and _is_zero_constant(rhs):
            pointer = lhs
        if pointer is None:
            return None
        if not self._dereference_dominates(pointer, inst, dominators, function):
            return None
        if inst.pred is ICmpPred.EQ:
            return _const_i1(False)
        if inst.pred is ICmpPred.NE:
            return _const_i1(True)
        return None

    @staticmethod
    def _dereference_dominates(pointer: Value, inst: ICmp,
                               dominators: DominatorTree,
                               function: Function) -> bool:
        for candidate in dominators.dominating_instructions(inst):
            accessed: Optional[Value] = None
            if isinstance(candidate, (Load, Store)):
                accessed = candidate.pointer
            if accessed is None:
                continue
            root = accessed
            while isinstance(root, (GetElementPtr, Cast)):
                root = root.pointer if isinstance(root, GetElementPtr) else root.value
            if root is pointer:
                return True
        return False

    # -- use replacement -----------------------------------------------------------------

    @staticmethod
    def _replace_uses(function: Function, old: Instruction, new: Constant) -> None:
        for block in function.blocks:
            for inst in block.instructions:
                if inst is old:
                    continue
                inst.replace_operand(old, new)


class NullCheckEliminationPass:
    """Standalone wrapper for the dominating-dereference null-check removal.

    gcc exposes this behaviour behind ``-fdelete-null-pointer-checks`` (§7);
    it is also available through :class:`UBAwareInstSimplifyPass` when the
    NULL_CHECK_ELIMINATION capability is enabled.
    """

    name = "null-check-elim"

    def run(self, function: Function, context: OptimizationContext) -> int:
        if not context.has(Capability.NULL_CHECK_ELIMINATION):
            return 0
        simplify = UBAwareInstSimplifyPass()
        dominators = DominatorTree(function)
        folded = 0
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, ICmp):
                    continue
                replacement = simplify._fold_null_check(inst, dominators, function)
                if replacement is None:
                    continue
                simplify._replace_uses(function, inst, replacement)
                block.instructions.remove(inst)
                folded += 1
        context.folded_comparisons += folded
        return folded


class SimplifyCfgPass:
    """Constant-folds branches and removes unreachable blocks."""

    name = "simplifycfg"

    def run(self, function: Function, context: OptimizationContext) -> int:
        changed = 0
        changed += self._fold_constant_branches(function)
        changed += self._remove_unreachable_blocks(function, context)
        return changed

    @staticmethod
    def _fold_constant_branches(function: Function) -> int:
        changed = 0
        for block in function.blocks:
            terminator = block.terminator
            if not isinstance(terminator, CondBranch):
                continue
            condition = terminator.condition
            if not isinstance(condition, Constant):
                continue
            target = terminator.if_true if condition.value else terminator.if_false
            abandoned = terminator.if_false if condition.value else terminator.if_true
            block.instructions[-1] = Branch(target, location=terminator.location,
                                            origin=terminator.origin)
            block.instructions[-1].parent = block
            for phi in abandoned.phis():
                phi.incoming = [(v, b) for v, b in phi.incoming if b is not block]
            changed += 1
        return changed

    @staticmethod
    def _remove_unreachable_blocks(function: Function,
                                   context: OptimizationContext) -> int:
        from repro.ir.cfg import reachable_blocks

        reachable = reachable_blocks(function)
        dead = [b for b in function.blocks if id(b) not in reachable]
        for block in dead:
            for live in function.blocks:
                for phi in live.phis():
                    phi.incoming = [(v, b) for v, b in phi.incoming if b is not block]
            function.remove_block(block)
        context.removed_blocks += len(dead)
        return len(dead)
