"""Compiler profiles for the Figure 4 survey.

A :class:`CompilerProfile` records, for one compiler version, the lowest
optimization level at which each UB-exploiting capability becomes active
(``None`` means the compiler never uses that capability).  The numbers are
calibrated from the observations the paper reports in Figure 4; re-running
the survey executes the actual passes of :mod:`repro.compilers.passes` with
those capabilities enabled and re-derives the matrix mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.compilers.passes import Capability


@dataclass(frozen=True)
class CompilerProfile:
    """One compiler version's UB-exploitation behaviour."""

    name: str
    vendor: str
    year: int
    #: capability -> lowest -O level at which it is enabled (None = never).
    capability_levels: Dict[Capability, Optional[int]] = field(default_factory=dict)
    open_source: bool = False

    def capabilities_at(self, level: int) -> Set[Capability]:
        """Capabilities active at optimization level ``-O{level}``."""
        active = set()
        for capability, minimum in self.capability_levels.items():
            if minimum is not None and level >= minimum:
                active.add(capability)
        return active

    def lowest_level_for(self, capability: Capability) -> Optional[int]:
        return self.capability_levels.get(capability)


def _profile(name: str, vendor: str, year: int, open_source: bool,
             pointer: Optional[int], null: Optional[int], signed: Optional[int],
             vrp: Optional[int], shift: Optional[int],
             abs_fold: Optional[int]) -> CompilerProfile:
    levels: Dict[Capability, Optional[int]] = {
        Capability.POINTER_OVERFLOW_FOLD: pointer,
        Capability.NULL_CHECK_ELIMINATION: null,
        Capability.SIGNED_OVERFLOW_FOLD: signed,
        Capability.VALUE_RANGE_SIGNED: vrp,
        Capability.OVERSIZED_SHIFT_FOLD: shift,
        Capability.ABS_FOLD: abs_fold,
        # Rewriting p + x < p into x < 0 accompanies pointer-overflow folding
        # in gcc and clang (§6.2.2).
        Capability.ALGEBRAIC_POINTER_REWRITE: pointer,
    }
    return CompilerProfile(name=name, vendor=vendor, year=year,
                           capability_levels=levels, open_source=open_source)


#: The 16 compiler versions of Figure 4.  Column order in the helper:
#: (pointer, null, signed, value-range, shift, abs).
ALL_PROFILES: List[CompilerProfile] = [
    _profile("gcc-2.95.3", "GNU", 2001, True, None, None, 1, None, None, None),
    _profile("gcc-3.4.6", "GNU", 2006, True, None, 2, 1, None, None, None),
    _profile("gcc-4.2.1", "GNU", 2007, True, 0, None, 2, None, None, 2),
    _profile("gcc-4.8.1", "GNU", 2013, True, 2, 2, 2, 2, None, 2),
    _profile("clang-1.0", "LLVM", 2009, True, 1, None, None, None, None, None),
    _profile("clang-3.3", "LLVM", 2013, True, 1, None, 1, None, 1, None),
    _profile("aCC-6.25", "HP", 2011, False, None, None, None, None, None, 3),
    _profile("armcc-5.02", "ARM", 2011, False, None, None, 2, None, None, None),
    _profile("icc-14.0.0", "Intel", 2013, False, None, 2, 1, 2, None, None),
    _profile("msvc-11.0", "Microsoft", 2012, False, None, 1, None, None, None, None),
    _profile("open64-4.5.2", "AMD", 2011, False, 1, None, 2, None, None, 2),
    _profile("pathcc-1.0.0", "PathScale", 2011, False, 1, None, 2, None, None, 2),
    _profile("suncc-5.12", "Oracle", 2011, False, None, 3, None, None, None, None),
    _profile("ti-7.4.2", "TI", 2012, False, 0, None, 0, 2, None, None),
    _profile("windriver-5.9.2", "Wind River", 2011, False, None, None, 0, None, None, None),
    _profile("xlc-12.1", "IBM", 2012, False, 3, None, None, None, None, None),
]


def profile_by_name(name: str) -> CompilerProfile:
    """Look up a profile; raises KeyError for unknown compiler names."""
    for profile in ALL_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown compiler profile {name!r}")


def modern_profiles() -> List[CompilerProfile]:
    """Profiles of the most recent compiler generation in the survey (2012+)."""
    return [p for p in ALL_PROFILES if p.year >= 2012]
