"""Optimization pipelines: running passes at a given -O level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.compilers.passes import (
    Capability,
    OptimizationContext,
    SimplifyCfgPass,
    UBAwareInstSimplifyPass,
)
from repro.ir.function import Function, Module


@dataclass
class OptimizationPipeline:
    """A fixed-point pass pipeline parameterised by enabled capabilities."""

    capabilities: Set[Capability] = field(default_factory=set)
    max_iterations: int = 8

    def run_function(self, function: Function) -> OptimizationContext:
        """Optimize one function in place; returns the accumulated context."""
        context = OptimizationContext(capabilities=set(self.capabilities))
        simplify = UBAwareInstSimplifyPass()
        cfg = SimplifyCfgPass()
        for _iteration in range(self.max_iterations):
            changed = simplify.run(function, context)
            changed += cfg.run(function, context)
            if not changed:
                break
        return context

    def run_module(self, module: Module) -> OptimizationContext:
        total = OptimizationContext(capabilities=set(self.capabilities))
        for function in module.defined_functions():
            context = self.run_function(function)
            total.folded_comparisons += context.folded_comparisons
            total.removed_blocks += context.removed_blocks
        return total


def optimize_function(function: Function,
                      capabilities: Iterable[Capability]) -> OptimizationContext:
    """Convenience helper: optimize ``function`` with the given capabilities."""
    pipeline = OptimizationPipeline(capabilities=set(capabilities))
    return pipeline.run_function(function)
