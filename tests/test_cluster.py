"""Tests for the structural clustering subsystem (docs/CLUSTER.md).

Covers the three stages separately — fingerprint invariances, cluster
grouping, confirmed propagation — and then the end-to-end contracts: a
clustered check must report exactly what an exhaustive check reports, and
every copied verdict must have passed the per-member solver gate.
"""

import json

import pytest

from repro.api import compile_source
from repro.cluster import (
    check_module_clustered,
    cluster_functions,
    fingerprint_function,
    synthetic_cluster_corpus,
)
from repro.core.checker import CheckerConfig, StackChecker
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig
from repro.ir.instructions import BinaryOp, BinOpKind, ICmp, ICmpPred


def _functions(source):
    return compile_source(source, "t.c").defined_functions()


def _alpha_rename(function, tag):
    """Rename every argument, block, and named instruction (not semantics)."""
    function.name = f"{tag}_{function.name}"
    for index, argument in enumerate(function.arguments):
        argument.name = f"{tag}_arg{index}"
    for index, block in enumerate(function.blocks):
        block.name = f"{tag}_bb{index}"
    serial = 0
    for block in function.blocks:
        for inst in block.instructions:
            if inst.name:
                inst.name = f"{tag}_v{serial}"
                serial += 1


class TestFingerprint:
    def test_invariant_under_alpha_renaming(self):
        for snippet in SNIPPETS[:6]:
            function = _functions(snippet.render("x"))[0]
            before = fingerprint_function(function)
            _alpha_rename(function, "renamed")
            after = fingerprint_function(function)
            assert before.matches(after), snippet.name
            assert before.digest == after.digest

    def test_invariant_across_template_instances(self):
        # The archive workload: one pattern, many identifier suffixes.
        for snippet in SNIPPETS:
            first = _functions(snippet.render("alpha"))
            second = _functions(snippet.render("beta"))
            for one, two in zip(first, second):
                assert fingerprint_function(one).matches(
                    fingerprint_function(two)), snippet.name

    def test_invariant_under_block_list_reordering(self):
        function = _functions(SNIPPETS[0].render("x"))[0]
        before = fingerprint_function(function)
        assert len(function.blocks) > 2
        function.blocks[1:] = reversed(function.blocks[1:])
        assert fingerprint_function(function).matches(before)

    def test_invariant_under_commutative_operand_swap(self):
        left = _functions("int f_a(int a, int b) { return a + b; }")[0]
        right = _functions("int f_b(int a, int b) { return b + a; }")[0]
        assert fingerprint_function(left).matches(fingerprint_function(right))

    def test_sensitive_to_operations_and_constants(self):
        add = fingerprint_function(
            _functions("int f(int a, int b) { return a + b; }")[0])
        sub = fingerprint_function(
            _functions("int f(int a, int b) { return a - b; }")[0])
        shifted = fingerprint_function(
            _functions("int f(int a, int b) { return a + b + 1; }")[0])
        assert not add.matches(sub)
        assert not add.matches(shifted)

    def test_sensitive_to_noncommutative_operand_order(self):
        div = fingerprint_function(
            _functions("int f(int a, int b) { return a / b; }")[0])
        vid = fingerprint_function(
            _functions("int f(int a, int b) { return b / a; }")[0])
        assert not div.matches(vid)

    def test_distinct_templates_stay_distinct(self):
        digests = {fingerprint_function(fn).canonical
                   for snippet in SNIPPETS
                   for fn in _functions(snippet.render("x"))}
        functions = sum(len(_functions(s.render("x"))) for s in SNIPPETS)
        assert len(digests) == functions


class TestClustering:
    def test_groups_by_canonical_form_in_submission_order(self):
        units = [SNIPPETS[0].render("a"), SNIPPETS[1].render("a"),
                 SNIPPETS[0].render("b"), SNIPPETS[1].render("b")]
        tagged = []
        for unit_index, source in enumerate(units):
            for function_index, function in enumerate(_functions(source)):
                tagged.append((unit_index, function_index,
                               f"unit{unit_index}", function))
        clusters = cluster_functions(tagged)
        # fig2's unit defines two functions per instance; fig1 defines one.
        sizes = sorted(len(c) for c in clusters)
        assert all(size == 2 for size in sizes)
        first = clusters[0]
        assert first.representative is first.members[0]
        assert first.representative.key == (0, 0)
        assert first.members[1].key[0] == 2
        assert first.representative.label.startswith("unit0:")

    def test_commutative_instances_share_a_cluster(self):
        functions = _functions("int g_a(int a, int b) { return a + b; }\n"
                               "int g_b(int a, int b) { return b + a; }")
        clusters = cluster_functions(
            (0, i, "t", fn) for i, fn in enumerate(functions))
        assert len(clusters) == 1 and len(clusters[0]) == 2


class TestPropagation:
    def test_clustered_module_matches_exhaustive(self):
        source = "".join(SNIPPETS[0].render(tag) for tag in "abcd")
        clustered, stats = check_module_clustered(
            compile_source(source, "t.c"), CheckerConfig(cluster=True))
        plain = StackChecker(CheckerConfig()).check_module(
            compile_source(source, "t.c"))
        assert report_signature(clustered) == report_signature(plain)
        assert stats.clusters == 1
        assert stats.propagated == stats.confirmed == 3
        assert stats.fallbacks == 0
        flags = [fr.cluster_propagated for fr in clustered.functions]
        assert flags == [False, True, True, True]
        assert all(len(fr.diagnostics) > 0 for fr in clustered.functions)

    def test_propagated_diagnostics_carry_member_identity(self):
        source = SNIPPETS[0].render("one") + SNIPPETS[0].render("two")
        clustered, _stats = check_module_clustered(
            compile_source(source, "t.c"), CheckerConfig(cluster=True))
        member_report = clustered.functions[1]
        assert member_report.cluster_propagated
        for diagnostic in member_report.diagnostics:
            assert diagnostic.function == member_report.function
            assert "two" in diagnostic.function

    def test_void_functions_fall_back_to_full_checks(self):
        # No return value means the equivalence gate has nothing to compare;
        # the member must be re-checked in full, never blindly copied.
        source = ("void sink_a(int *p) { if (p) *p = 0; }\n"
                  "void sink_b(int *q) { if (q) *q = 0; }\n")
        clustered, stats = check_module_clustered(
            compile_source(source, "t.c"), CheckerConfig(cluster=True))
        plain = StackChecker(CheckerConfig()).check_module(
            compile_source(source, "t.c"))
        assert report_signature(clustered) == report_signature(plain)
        assert stats.clusters == 1
        assert stats.propagated == 0 and stats.fallbacks == 1
        assert not any(fr.cluster_propagated for fr in clustered.functions)

    def test_checker_config_flag_routes_check_module(self):
        source = SNIPPETS[0].render("one") + SNIPPETS[0].render("two")
        checker = StackChecker(CheckerConfig(cluster=True))
        report = checker.check_module(compile_source(source, "t.c"))
        assert [fr.cluster_propagated for fr in report.functions] == \
            [False, True]


class TestEngineIntegration:
    def test_engine_clustered_run_matches_exhaustive(self, tmp_path):
        corpus = synthetic_cluster_corpus(12, seed=0, snippets=SNIPPETS[:4])
        results_path = tmp_path / "results.jsonl"
        clustered = CheckEngine(EngineConfig(
            workers=0, checker=CheckerConfig(cluster=True),
            results_path=str(results_path))).check_corpus(corpus)
        exhaustive = CheckEngine(EngineConfig(
            workers=0, checker=CheckerConfig())).check_corpus(corpus)

        assert [(r.name, report_signature(r.report))
                for r in clustered.results] == \
               [(r.name, report_signature(r.report))
                for r in exhaustive.results]

        stats = clustered.stats
        assert stats.cluster_functions == 12
        assert stats.cluster_clusters == 4
        assert stats.cluster_propagated == stats.cluster_confirmed == 8
        assert stats.cluster_fallbacks == 0
        assert stats.as_dict()["cluster"]["propagated"] == 8

        records = [json.loads(line)
                   for line in results_path.read_text().splitlines()]
        units = [r for r in records if r["type"] == "unit"]
        cluster_records = [r for r in records if r["type"] == "cluster"]
        assert [u["unit"] for u in units] == [name for name, _ in corpus]
        assert len(cluster_records) == 4
        for record in cluster_records:
            assert record["size"] == 3
            assert record["propagated"] == 2
            assert record["fallbacks"] == 0
            assert record["representative"] in record["members"]
        propagated_units = [
            f["propagated"] for u in units for f in u["functions"]]
        assert propagated_units.count(True) == 8

    def test_compile_errors_surface_as_failed_units(self):
        corpus = [("good", SNIPPETS[0].render("g")),
                  ("broken", "int f( {")]
        result = CheckEngine(EngineConfig(
            workers=0, checker=CheckerConfig(cluster=True))).check_corpus(corpus)
        assert result.stats.units == 2
        assert result.stats.failed_units == 1
        broken = result.results[1]
        assert broken.error is not None and not broken.report.functions
