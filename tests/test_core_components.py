"""Component-level tests for the checker internals: encoder, queries, min-UB sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import compile_source
from repro.core.encode import EncoderOptions, FunctionEncoder
from repro.core.elimination import run_elimination
from repro.core.mincond import minimal_ub_conditions
from repro.core.queries import QueryEngine
from repro.core.simplification import AlgebraOracle, BooleanOracle, run_simplification
from repro.core.ubconditions import UBKind
from repro.ir.instructions import GetElementPtr, ICmp, Load
from repro.solver.terms import TermManager


def encoder_for(source: str, name: str | None = None) -> FunctionEncoder:
    module = compile_source(source)
    function = module.defined_functions()[0] if name is None else module.get_function(name)
    return FunctionEncoder(function)


class TestEncoderValues:
    def test_arguments_become_named_variables(self):
        encoder = encoder_for("int f(int x) { return x; }")
        x = encoder.function.argument("x")
        term = encoder.term(x)
        assert term.is_var()
        assert "arg.x" in term.name
        assert term.width == 32

    def test_terms_are_cached(self):
        encoder = encoder_for("int f(int x) { return x + x; }")
        add = next(i for i in encoder.function.instructions()
                   if i.opcode() == "add")
        assert encoder.term(add) is encoder.term(add)

    def test_loads_are_unconstrained_and_distinct(self):
        encoder = encoder_for("int f(int *p) { return *p + *p; }")
        loads = [i for i in encoder.function.instructions() if isinstance(i, Load)]
        assert len(loads) == 2
        assert encoder.term(loads[0]) is not encoder.term(loads[1])

    def test_abs_call_modeled_precisely(self):
        encoder = encoder_for("int f(int x) { return abs(x); }")
        call = next(i for i in encoder.function.instructions()
                    if i.opcode().startswith("call"))
        term = encoder.term(call)
        # ite(x < 0, -x, x), not a fresh variable
        assert not term.is_var()

    def test_unknown_call_is_fresh_variable(self):
        encoder = encoder_for("int f(int x) { return rand_value(x); }")
        call = next(i for i in encoder.function.instructions()
                    if i.opcode().startswith("call"))
        assert encoder.term(call).is_var()

    def test_division_partial_axioms_registered(self):
        encoder = encoder_for("int f(int a, int b) { return a / b; }")
        div = next(i for i in encoder.function.instructions()
                   if i.opcode() == "sdiv")
        result = encoder.term(div)
        assert result.is_var()
        definitions = encoder.definitions_for(result)
        assert definitions  # the b == ±1 / a == 0 axioms

    def test_full_division_circuit_option(self):
        module = compile_source("int f(int a, int b) { return a / b; }")
        function = module.defined_functions()[0]
        encoder = FunctionEncoder(
            function, options=EncoderOptions(partial_division_axioms=False))
        div = next(i for i in function.instructions() if i.opcode() == "sdiv")
        assert not encoder.term(div).is_var()


class TestEncoderReachability:
    SOURCE = """
    int f(int x) {
        if (x > 10) {
            if (x < 5)
                return 1;
            return 2;
        }
        return 3;
    }
    """

    def test_entry_is_always_reachable(self):
        encoder = encoder_for(self.SOURCE)
        assert encoder.block_reach(encoder.function.entry).value is True

    def test_contradictory_nested_block_detected_by_elimination(self):
        encoder = encoder_for(self.SOURCE)
        engine = QueryEngine(encoder, timeout=10.0)
        findings = run_elimination(encoder, engine)
        trivially_dead = [f for f in findings if f.trivially_dead]
        # x > 10 && x < 5 is unsatisfiable even without the UB assumption.
        assert trivially_dead
        # Nothing here is *unstable* (no UB involved).
        assert not [f for f in findings if not f.trivially_dead]

    def test_loop_back_edge_excluded(self):
        encoder = encoder_for("""
            int f(int n) {
                int i = 0;
                while (i < n)
                    i = i + 1;
                return i;
            }
        """)
        # Reachability of the loop body must not be constant false even though
        # back edges are dropped.
        body = next(b for b in encoder.function.blocks if b.name.startswith("while.body"))
        reach = encoder.block_reach(body)
        assert not (reach.is_const() and reach.value is False)


class TestEncoderUBConditions:
    def test_every_expected_kind_emitted(self):
        encoder = encoder_for("""
            int f(int *p, int x, int y, char *buf, unsigned int len) {
                int a[4];
                int v = *p;
                int s = x + y;
                int d = x / y;
                int sh = x << y;
                int b = a[x];
                int m = abs(x);
                char *q = buf + len;
                return v + s + d + sh + b + m;
            }
        """)
        kinds = set()
        for inst in encoder.function.instructions():
            for condition in encoder.ub_conditions(inst):
                kinds.add(condition.kind)
        assert {UBKind.NULL_DEREF, UBKind.SIGNED_OVERFLOW, UBKind.DIV_BY_ZERO,
                UBKind.OVERSIZED_SHIFT, UBKind.BUFFER_OVERFLOW,
                UBKind.ABS_OVERFLOW, UBKind.POINTER_OVERFLOW} <= kinds

    def test_unsigned_arithmetic_has_no_overflow_condition(self):
        encoder = encoder_for("""
            unsigned int f(unsigned int a, unsigned int b) { return a + b; }
        """)
        kinds = set()
        for inst in encoder.function.instructions():
            for condition in encoder.ub_conditions(inst):
                kinds.add(condition.kind)
        assert UBKind.SIGNED_OVERFLOW not in kinds

    def test_member_access_condition_names_base_pointer(self):
        encoder = encoder_for("""
            struct pair { int a; int b; };
            int f(struct pair *p) { return p->b; }
        """)
        load = next(i for i in encoder.function.instructions() if isinstance(i, Load))
        conditions = encoder.ub_conditions(load)
        null_conditions = [c for c in conditions if c.kind is UBKind.NULL_DEREF]
        assert null_conditions
        # The condition constrains p itself, not p + offset.
        assert "arg.p" in repr(null_conditions[0].condition)

    def test_use_after_free_condition(self):
        encoder = encoder_for("""
            int f(int *p) { free(p); return *p; }
        """)
        load = next(i for i in encoder.function.instructions() if isinstance(i, Load))
        kinds = {c.kind for c in encoder.ub_conditions(load)}
        assert UBKind.USE_AFTER_FREE in kinds


class TestQueriesAndMinimalSets:
    def test_query_engine_counts(self):
        encoder = encoder_for("int f(int x) { return x; }")
        engine = QueryEngine(encoder, timeout=10.0)
        manager = encoder.manager
        assert engine.is_unsat([manager.false()]) is True
        assert engine.is_unsat([manager.true()]) is False
        assert engine.stats.queries == 2
        assert engine.stats.unsat == 1 and engine.stats.sat == 1

    def test_minimal_set_isolates_the_relevant_condition(self):
        encoder = encoder_for("""
            int f(int *p, int x) {
                int v = *p;
                int s = x + 1;
                if (!p) return -1;
                return v + s;
            }
        """)
        engine = QueryEngine(encoder, timeout=10.0)
        check = next(i for i in encoder.function.instructions()
                     if isinstance(i, ICmp))
        conditions = encoder.dominating_ub_conditions(check)
        assert len(conditions) >= 2  # null deref + signed overflow
        expression = encoder.comparison_bool(check)
        reach = encoder.instruction_reach(check)
        hypothesis_terms = [expression, reach]
        minimal = minimal_ub_conditions(engine, hypothesis_terms, conditions)
        assert [c.kind for c in minimal] == [UBKind.NULL_DEREF]

    def test_simplification_oracle_order_and_skip(self):
        encoder = encoder_for("""
            int f(char *d, char *end, int n) {
                if (d + n < d) return -1;
                return 0;
            }
        """)
        engine = QueryEngine(encoder, timeout=10.0)
        findings = run_simplification(encoder, engine,
                                      oracles=[BooleanOracle(), AlgebraOracle()])
        reported = [f for f in findings if not f.trivially_simplified]
        assert reported
        # A comparison reported by the boolean oracle is not re-reported by
        # the algebra oracle.
        instructions = [id(f.instruction) for f in reported]
        assert len(instructions) == len(set(instructions))


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=120))
    def test_guarded_addition_never_flagged(self, bound):
        from repro.api import check_source
        source = f"""
        int f(int x) {{
            if (x < 0 || x > {bound}) return -1;
            return x + {bound};
        }}
        """
        assert not check_source(source).bugs

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=1000))
    def test_unstable_signed_check_always_flagged(self, constant):
        from repro.api import check_source
        source = f"""
        int f(int x) {{
            if (x + {constant} < x) return -1;
            return 0;
        }}
        """
        report = check_source(source)
        assert report.bugs
        kinds = {k for b in report.bugs for k in b.ub_kinds}
        assert UBKind.SIGNED_OVERFLOW in kinds
