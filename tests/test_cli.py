"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main

UNSTABLE = """
int write_check(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
"""

STABLE = """
int safe_div(int a, int b) {
    if (b == 0) return 0;
    return a / b;
}
"""


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return str(path)


def test_reports_unstable_code_and_exits_1(tmp_path, capsys):
    code = main([write(tmp_path, "unstable.c", UNSTABLE)])
    out = capsys.readouterr().out
    assert code == 1
    assert "unstable code" in out
    assert "warning(s)" in out


def test_stable_code_exits_0(tmp_path, capsys):
    code = main([write(tmp_path, "stable.c", STABLE)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no unstable code found" in out


def test_json_output_matches_sink_format(tmp_path, capsys):
    path = write(tmp_path, "unstable.c", UNSTABLE)
    code = main([path, "--json"])
    record = json.loads(capsys.readouterr().out)
    assert code == 1
    assert record["type"] == "unit"
    assert record["unit"] == path
    assert record["queries"] > 0
    assert len(record["diagnostics"]) >= 2
    assert record["diagnostics"][0]["witness"] is None


def test_validate_attaches_witnesses(tmp_path, capsys):
    code = main([write(tmp_path, "unstable.c", UNSTABLE), "--json",
                 "--validate"])
    record = json.loads(capsys.readouterr().out)
    assert code == 1
    assert record["witnesses_confirmed"] == len(record["diagnostics"])
    for diagnostic in record["diagnostics"]:
        assert diagnostic["witness"]["verdict"] == "confirmed"


def test_validate_human_readable(tmp_path, capsys):
    code = main([write(tmp_path, "unstable.c", UNSTABLE), "--validate"])
    out = capsys.readouterr().out
    assert code == 1
    assert "witness confirmed" in out
    assert "witness validation:" in out


def test_stdin_input(tmp_path, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(STABLE))
    assert main(["-"]) == 0
    assert "no unstable code" in capsys.readouterr().out


def test_missing_file_exits_2(tmp_path, capsys):
    code = main([str(tmp_path / "missing.c")])
    assert code == 2
    assert "cannot read" in capsys.readouterr().err


def test_uncompilable_source_exits_2(tmp_path, capsys):
    code = main([write(tmp_path, "broken.c", "int f( {")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_show_config_prints_checker_config(tmp_path, capsys):
    main([write(tmp_path, "stable.c", STABLE), "--show-config",
          "--no-incremental", "--timeout", "2.5"])
    out = capsys.readouterr().out
    assert "CheckerConfig:" in out
    assert "incremental = False" in out
    assert "solver_timeout = 2.5" in out


def test_parser_flags_exist():
    parser = build_parser()
    args = parser.parse_args(["file.c", "--json", "--validate",
                              "--max-conflicts", "100"])
    assert args.json and args.validate and args.max_conflicts == 100
    args = parser.parse_args(["file.c", "--repair", "--patch-out", "p.diff",
                              "--seed", "3", "--diff"])
    assert args.repair and args.patch_out == "p.diff"
    assert args.seed == 3 and args.diff


REORDERABLE = """
int average(int total, int count) {
    int mean = total / count;
    if (count == 0) return 0;
    return mean;
}
"""


def test_repair_writes_patches(tmp_path, capsys):
    out = tmp_path / "patches.diff"
    code = main([write(tmp_path, "reorder.c", REORDERABLE), "--repair",
                 "--patch-out", str(out)])
    assert code == 1
    assert "auto-repair:" in capsys.readouterr().out
    text = out.read_text(encoding="utf-8")
    assert "--- a/average.ll" in text
    assert "+++ b/average.ll" in text
    assert "reorder-guard" in text


def test_repair_json_record(tmp_path, capsys):
    code = main([write(tmp_path, "reorder.c", REORDERABLE), "--repair",
                 "--json"])
    record = json.loads(capsys.readouterr().out)
    assert code == 1
    assert record["repairs_attempted"] == record["repairs_succeeded"] > 0
    for diagnostic in record["diagnostics"]:
        assert diagnostic["repair"]["status"] == "repaired"


def test_patch_out_stdout_and_no_patches(tmp_path, capsys):
    code = main([write(tmp_path, "stable.c", STABLE), "--repair",
                 "--patch-out", "-"])
    out = capsys.readouterr().out
    assert code == 0
    assert "# no patches emitted" in out


def test_seed_flag_reaches_config(tmp_path, capsys):
    main([write(tmp_path, "stable.c", STABLE), "--seed", "42",
          "--show-config"])
    out = capsys.readouterr().out
    assert "witness_seed = 42" in out


def test_diff_runs_the_differential_campaign(tmp_path, capsys):
    code = main([write(tmp_path, "stable.c", STABLE), "--diff", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Differential optimizer testing (seed 1" in out


def test_diff_with_json_keeps_stdout_parseable(tmp_path, capsys):
    main([write(tmp_path, "stable.c", STABLE), "--diff", "--json"])
    captured = capsys.readouterr()
    record = json.loads(captured.out)       # table must not corrupt stdout
    assert record["type"] == "unit"
    assert "Differential optimizer testing" in captured.err


# -- the fuzz subcommand ------------------------------------------------------------


def test_fuzz_findings_exit_1(tmp_path, capsys):
    out = tmp_path / "campaign.jsonl"
    code = main(["fuzz", "--budget", "6", "--seed", "1", "--reduce",
                 "--out", str(out)])
    printed = capsys.readouterr().out
    assert code == 1                       # seed 1's first programs do flag
    assert "fuzz campaign: seed 1, 6 programs" in printed
    assert "reduced:" in printed
    lines = out.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 7                 # 6 programs + 1 summary
    summary = json.loads(lines[-1])
    assert summary["type"] == "fuzz-run"
    assert summary["diff"]["miscompile"] == 0


def test_fuzz_clean_campaign_exits_0(capsys):
    # Seed 11's first two programs are stable-by-construction variants, so
    # the campaign reports nothing — the no-findings exit path.
    code = main(["fuzz", "--budget", "2", "--seed", "11", "--no-diff",
                 "--no-validate"])
    printed = capsys.readouterr().out
    assert code == 0
    assert "flagged 0 programs" in printed


def test_fuzz_anomalies_exit_1_even_without_diagnostics(monkeypatch, capsys):
    # A miscompile (or crashed unit / expectation mismatch) must flip the
    # exit code even when no checker diagnostic was reported.
    from repro.fuzz import FuzzResult, FuzzStats

    def fake_campaign(config):
        return FuzzResult(stats=FuzzStats(seed=config.seed, programs=2,
                                          miscompiles=1))

    monkeypatch.setattr("repro.fuzz.run_fuzz_campaign", fake_campaign)
    code = main(["fuzz", "--budget", "2", "--seed", "11"])
    capsys.readouterr()
    assert code == 1


def test_fuzz_invalid_budget_exits_2(capsys):
    code = main(["fuzz", "--budget", "0"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_fuzz_unwritable_out_exits_2(tmp_path, capsys):
    # Pointing --out at a directory fails the stream open with an OSError.
    code = main(["fuzz", "--budget", "2", "--out", str(tmp_path)])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_fuzz_parser_flags_exist():
    from repro.__main__ import build_fuzz_parser

    args = build_fuzz_parser().parse_args(
        ["--seed", "7", "--budget", "42", "--reduce", "--out", "x.jsonl",
         "--workers", "2", "--no-diff", "--no-validate"])
    assert args.seed == 7 and args.budget == 42 and args.reduce
    assert args.out == "x.jsonl" and args.workers == 2
    assert args.no_diff and args.no_validate


def test_fuzz_deterministic_stream(tmp_path):
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    assert main(["fuzz", "--budget", "5", "--seed", "3",
                 "--out", str(first)]) == \
        main(["fuzz", "--budget", "5", "--seed", "3", "--out", str(second)])
    assert first.read_bytes() == second.read_bytes()


# ---------------------------------------------------------------------------
# Observability flags (--version, --trace, --profile)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("argv", [["--version"], ["fuzz", "--version"],
                                  ["cluster", "--version"]],
                         ids=["check", "fuzz", "cluster"])
def test_version_flag_on_every_subcommand(argv, capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 0
    assert f"repro {__version__}" in capsys.readouterr().out


def test_trace_writes_loadable_chrome_trace(tmp_path, capsys):
    from repro.obs.chrometrace import validate_chrome_trace

    trace = tmp_path / "trace.json"
    code = main([write(tmp_path, "unstable.c", UNSTABLE),
                 "--trace", str(trace), "--profile"])
    captured = capsys.readouterr()
    assert code == 1
    document = json.loads(trace.read_text(encoding="utf-8"))
    validate_chrome_trace(document)
    names = [event["name"] for event in document["traceEvents"]]
    for stage in ("stage1.parse", "stage2.encode", "stage4.report",
                  "solver.query"):
        assert stage in names, stage
    # --profile prints the text profile to stderr, report stays on stdout.
    assert "self" in captured.err or "solver" in captured.err
    assert "unstable code" in captured.out


def test_cluster_trace_writes_loadable_chrome_trace(tmp_path, capsys):
    from repro.obs.chrometrace import validate_chrome_trace

    trace = tmp_path / "trace.json"
    main(["cluster", "--synthetic", "6", "--trace", str(trace)])
    capsys.readouterr()
    document = json.loads(trace.read_text(encoding="utf-8"))
    validate_chrome_trace(document)
    assert any(event["name"].startswith("unit:")
               for event in document["traceEvents"])


# ---------------------------------------------------------------------------
# The check alias, --stdin, and interrupt handling (exit 130)
# ---------------------------------------------------------------------------


def test_check_alias_matches_default_mode(tmp_path, capsys):
    from repro.engine.sink import verdict_view

    path = write(tmp_path, "unstable.c", UNSTABLE)
    direct = main([path, "--json"])
    direct_out = capsys.readouterr().out
    aliased = main(["check", path, "--json"])
    aliased_out = capsys.readouterr().out
    assert direct == aliased == 1
    # Identical up to wall-clock timing fields.
    assert verdict_view(json.loads(direct_out)) == \
        verdict_view(json.loads(aliased_out))


def test_check_stdin_flag(capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(UNSTABLE))
    code = main(["check", "--stdin", "--json"])
    record = json.loads(capsys.readouterr().out)
    assert code == 1
    assert record["unit"] == "<stdin>"


def test_no_source_and_no_stdin_exits_2(capsys):
    assert main(["check"]) == 2
    assert "--stdin" in capsys.readouterr().err


def test_cluster_interrupt_flushes_partial_stream_and_exits_130(
        tmp_path, capsys, monkeypatch):
    import repro.engine.engine as engine_module

    out = tmp_path / "partial.jsonl"
    real_check = engine_module.check_work_unit
    calls = {"count": 0}

    def interrupting(unit, config, **kwargs):
        calls["count"] += 1
        if calls["count"] == 3:               # Ctrl-C lands mid-corpus
            raise KeyboardInterrupt
        return real_check(unit, config, **kwargs)

    monkeypatch.setattr(engine_module, "check_work_unit", interrupting)
    code = main(["cluster", "--synthetic", "6", "--no-cluster",
                 "--out", str(out)])
    captured = capsys.readouterr()
    assert code == 130
    assert "interrupted" in captured.err
    records = [json.loads(line) for line in out.read_text().splitlines()]
    # Finished units reached the stream; the summary is marked interrupted.
    assert [r["type"] for r in records[:-1]] == ["unit"] * (len(records) - 1)
    assert records[-1]["type"] == "run"
    assert records[-1]["interrupted"] is True
    assert records[-1]["units"] == len(records) - 1 == 2


def test_fuzz_interrupt_flushes_partial_summary_and_exits_130(
        tmp_path, capsys, monkeypatch):
    from repro.engine.engine import CheckEngine

    out = tmp_path / "partial-fuzz.jsonl"

    def interrupting(self, corpus):
        raise KeyboardInterrupt

    monkeypatch.setattr(CheckEngine, "check_corpus", interrupting)
    code = main(["fuzz", "--budget", "2", "--seed", "11",
                 "--out", str(out)])
    captured = capsys.readouterr()
    assert code == 130
    assert "interrupted" in captured.err
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert records[-1]["type"] == "fuzz-run"
    assert records[-1]["interrupted"] is True


def test_sigterm_interrupts_like_ctrl_c(tmp_path):
    """SIGTERM mid-run behaves exactly like Ctrl-C: partial JSONL flushed,
    summary marked interrupted, exit 130."""
    import os
    import signal
    import subprocess
    import sys
    import time

    import repro

    out = tmp_path / "sigterm.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "--synthetic", "80",
         "--no-cluster", "--out", str(out)],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True, env=env)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:        # wait for real progress
        if out.exists() and len(out.read_text().splitlines()) >= 2:
            break
        time.sleep(0.05)
    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=60) == 130
    assert "interrupted" in process.stderr.read()
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert records[-1]["type"] == "run"
    assert records[-1]["interrupted"] is True
    assert 0 < records[-1]["units"] < 80


def test_run_summary_records_carry_version_and_config(tmp_path, capsys):
    from repro import __version__
    from repro.engine.engine import CheckEngine, EngineConfig

    results = tmp_path / "results.jsonl"
    engine = CheckEngine(EngineConfig(workers=0, results_path=str(results)))
    engine.check_corpus([("u0", STABLE)])
    records = [json.loads(line) for line in results.read_text().splitlines()]
    summary = [r for r in records if r["type"] == "run"]
    assert summary, [r["type"] for r in records]
    assert summary[0]["version"] == __version__
    assert summary[0]["config"]["engine"]["workers"] == 0
    assert summary[0]["config"]["checker"]["trace"] is False

    fuzz_out = tmp_path / "fuzz.jsonl"
    main(["fuzz", "--budget", "2", "--seed", "5", "--out", str(fuzz_out)])
    capsys.readouterr()
    records = [json.loads(line) for line in fuzz_out.read_text().splitlines()]
    summary = [r for r in records if r["type"] == "fuzz-run"]
    assert summary[0]["version"] == __version__
    assert summary[0]["config"]["seed"] == 5
    # Environment knobs stay out of the identity-bearing summary.
    assert "out" not in summary[0]["config"]
