"""Trace determinism contract (ISSUE satellite: workers 1/2/4, reruns).

Span *identity* — ids, structure, names, seq, args — must be a pure
function of the work, never of scheduling: the assembled span tree is
byte-identical whatever the worker count, across repeated runs, and
whether or not the solver-query cache answered a query (the ``solver.query``
span carries only the verdict, which is equal either way).  Timings ride
out-of-band and are excluded from the comparison.
"""

import json

import pytest

from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig
from repro.obs.trace import span_payloads


def _corpus():
    return [(s.name, s.render("obsdet")) for s in SNIPPETS[:8]]


def _traced_payload_blob(workers, validate=True):
    engine = CheckEngine(EngineConfig(
        workers=workers,
        checker=CheckerConfig(validate_witnesses=validate, trace=True)))
    outcome = engine.check_corpus(_corpus())
    assert outcome.trace is not None
    # Byte-level contract: serialize the identity payloads, compare blobs.
    return json.dumps(span_payloads(outcome.trace), sort_keys=True)


@pytest.fixture(scope="module")
def sequential_blob():
    return _traced_payload_blob(0)


def test_span_tree_identical_across_worker_counts(sequential_blob):
    for workers in (2, 4):
        assert _traced_payload_blob(workers) == sequential_blob, \
            f"workers={workers}"


def test_span_tree_identical_across_reruns(sequential_blob):
    assert _traced_payload_blob(0) == sequential_blob


def test_span_tree_unaffected_by_cache_contents(sequential_blob):
    # A cache-cold run and a cache-disabled run produce the same identity
    # payloads: cache hits answer queries but never change span identity.
    engine = CheckEngine(EngineConfig(
        workers=0, cache_enabled=False,
        checker=CheckerConfig(validate_witnesses=True, trace=True)))
    outcome = engine.check_corpus(_corpus())
    blob = json.dumps(span_payloads(outcome.trace), sort_keys=True)
    assert blob == sequential_blob


def test_span_tree_changes_with_the_work(sequential_blob):
    engine = CheckEngine(EngineConfig(
        workers=0, checker=CheckerConfig(validate_witnesses=True, trace=True)))
    outcome = engine.check_corpus(_corpus()[:4])
    blob = json.dumps(span_payloads(outcome.trace), sort_keys=True)
    assert blob != sequential_blob


def test_chrome_trace_identity_portion_is_deterministic(tmp_path):
    # Full Chrome-trace files differ only in the timing fields: strip
    # ts/dur and the remaining event stream is byte-identical.
    def stripped(workers):
        path = tmp_path / f"w{workers}.json"
        engine = CheckEngine(EngineConfig(
            workers=workers, trace_path=str(path),
            checker=CheckerConfig(validate_witnesses=True)))
        engine.check_corpus(_corpus())
        document = json.loads(path.read_text(encoding="utf-8"))
        for event in document["traceEvents"]:
            event.pop("ts", None)
            event.pop("dur", None)
        document.get("otherData", {}).pop("metrics", None)
        return json.dumps(document["traceEvents"], sort_keys=True)

    assert stripped(0) == stripped(2)
