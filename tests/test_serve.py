"""Tests for the always-on checking service (repro.serve, docs/SERVE.md).

Covers the wire protocol, the deterministic scheduler, the warm worker
pool's death-recovery contract, and the full daemon gauntlet: concurrent
clients with different priorities, quota/queue rejection, cancellation,
graceful drain with zero lost or duplicated records, verdict identity
with batch engine runs, and the ``serve`` / ``submit`` CLI round trip.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.checker import CheckerConfig
from repro.engine.sink import verdict_view
from repro.engine.workunit import UnitResult, WorkUnit
from repro.serve import protocol
from repro.serve.pool import CRASH_META_KEY, TEST_HOOKS_ENV, WarmWorkerPool
from repro.serve.scheduler import AdmissionError, JobScheduler
from repro.serve.client import ServeClient, ServeError, SubmitRejected
from repro.serve.server import ServeConfig, ServeServer

UNSTABLE = """
int write_check(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
"""

STABLE = """
int safe_div(int a, int b) {
    if (b == 0) return 0;
    return a / b;
}
"""


# -- protocol -------------------------------------------------------------------------


def test_message_framing_round_trip():
    message = {"op": "submit", "units": [], "priority": 3}
    framed = protocol.encode(message)
    assert framed.endswith(b"\n")
    assert protocol.decode(framed[:-1]) == message


def test_decode_rejects_garbage():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"not json")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2]")            # not an object


def test_unit_wire_round_trip():
    unit = WorkUnit(name="u", source="int f() { return 0; }",
                    filename="dir/u.c", meta={"tag": "fuzz", "seed": 7})
    rebuilt = protocol.unit_from_wire(protocol.unit_to_wire(unit))
    assert rebuilt.name == unit.name
    assert rebuilt.source == unit.source
    assert rebuilt.filename == unit.filename
    assert rebuilt.meta == unit.meta


def test_module_units_do_not_cross_the_wire():
    from repro.api import compile_source

    module = compile_source(STABLE)
    unit = WorkUnit(name="m", module=module)
    with pytest.raises(protocol.ProtocolError):
        protocol.unit_to_wire(unit)


def test_unit_from_wire_validates():
    with pytest.raises(protocol.ProtocolError):
        protocol.unit_from_wire({"source": "x"})         # no name
    with pytest.raises(protocol.ProtocolError):
        protocol.unit_from_wire({"name": "u"})           # no source
    with pytest.raises(protocol.ProtocolError):
        protocol.unit_from_wire({"name": "u", "source": "x", "meta": 3})


def test_checker_overrides_are_whitelisted():
    base = CheckerConfig()
    updated = protocol.checker_from_wire(
        base, {"solver_timeout": 1.5, "max_conflicts": 10})
    assert updated.solver_timeout == 1.5 and updated.max_conflicts == 10
    assert protocol.checker_from_wire(base, None) is base
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"backend": "pysat"})
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"no_such_field": 1})


def test_checker_overrides_are_type_checked():
    """Bad override *values* must be a submit-time rejection, not an opaque
    per-unit failure inside the workers."""
    base = CheckerConfig()
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"solver_timeout": "x"})
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"solver_timeout": {"nested": 1}})
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"incremental": "yes"})
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"incremental": 1})   # not a bool
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"max_conflicts": 1.5})
    with pytest.raises(protocol.ProtocolError):
        protocol.checker_from_wire(base, {"witness_seed": True})
    # JSON has one number type: ints are fine where a float is expected.
    assert protocol.checker_from_wire(base, {"solver_timeout": 2}) \
        .solver_timeout == 2.0


def _line_socket_pair():
    left, right = socket.socketpair()
    return left, protocol.LineSocket(right)


def test_receive_skips_blank_line_floods_without_recursing():
    """Thousands of consecutive blank lines must not blow the stack (the
    old implementation recursed once per blank line)."""
    sender, receiver = _line_socket_pair()
    sender.sendall(b"\n" * 5000 + protocol.encode({"op": "ping"}))
    assert receiver.receive() == {"op": "ping"}
    sender.close()
    assert receiver.receive() is None


def test_receive_caps_line_length(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 1024)
    sender, receiver = _line_socket_pair()
    sender.sendall(b"x" * 4096)               # no newline in sight
    with pytest.raises(protocol.ProtocolError):
        receiver.receive()
    # The connection is closed: the stream was unrecoverable.
    assert receiver.receive() is None
    sender.close()


def test_require_op_rejects_unknown_ops():
    assert protocol.require_op({"op": "ping"}) == "ping"
    with pytest.raises(protocol.ProtocolError):
        protocol.require_op({"op": "format-disk"})
    with pytest.raises(protocol.ProtocolError):
        protocol.require_op({})


# -- scheduler ------------------------------------------------------------------------


def _units(count, prefix="u"):
    return [WorkUnit(name=f"{prefix}{i}", source=STABLE)
            for i in range(count)]


def _result(name):
    from repro.core.report import BugReport

    return UnitResult(name=name, report=BugReport(module=name))


def test_scheduler_orders_by_priority_then_submission():
    sched = JobScheduler()
    low = sched.submit("c1", _units(1, "low"), CheckerConfig(), priority=0)
    high = sched.submit("c2", _units(1, "high"), CheckerConfig(), priority=5)
    tied = sched.submit("c3", _units(1, "tied"), CheckerConfig(), priority=5)
    order = []
    while True:
        picked = sched.next_unit(lambda _c: True)
        if picked is None:
            break
        order.append(picked[0].job_id)
    assert order == [high.job_id, tied.job_id, low.job_id]


def test_scheduler_dispatches_units_in_submission_order():
    sched = JobScheduler()
    job = sched.submit("c", _units(4), CheckerConfig())
    indices = [sched.next_unit(lambda _c: True)[1] for _ in range(4)]
    assert indices == [0, 1, 2, 3]
    assert job.pending_units == 0 and job.in_flight == 4


def test_scheduler_skips_backpressured_clients():
    sched = JobScheduler()
    fast = sched.submit("fast", _units(1, "f"), CheckerConfig(), priority=0)
    sched.submit("slow", _units(1, "s"), CheckerConfig(), priority=9)
    # The slow client outranks, but its outbox is full: fast's unit runs.
    picked = sched.next_unit(lambda client: client == "fast")
    assert picked[0].job_id == fast.job_id


def test_scheduler_admission_bounds():
    sched = JobScheduler(max_queued_units=3, client_quota=2)
    with pytest.raises(AdmissionError) as excinfo:
        sched.submit("c", [], CheckerConfig())
    assert excinfo.value.reason == "empty"
    with pytest.raises(AdmissionError) as excinfo:
        sched.submit("c", _units(3), CheckerConfig())
    assert excinfo.value.reason == "quota"   # quota (2) trips before queue (3)
    sched.submit("c", _units(2), CheckerConfig())
    with pytest.raises(AdmissionError) as excinfo:
        sched.submit("other", _units(2), CheckerConfig())
    assert excinfo.value.reason == "queue-full"


def test_scheduler_emits_results_in_submission_order():
    sched = JobScheduler()
    job = sched.submit("c", _units(3), CheckerConfig())
    for _ in range(3):
        sched.next_unit(lambda _c: True)
    # Completions arrive out of order; emission must not.
    assert sched.complete(job.job_id, 2, _result("u2")) == []
    assert sched.complete(job.job_id, 1, _result("u1")) == []
    ready = sched.complete(job.job_id, 0, _result("u0"))
    assert [index for index, _ in ready] == [0, 1, 2]
    assert job.finished
    assert sched.finish(job.job_id) is job
    assert sched.idle()


def test_scheduler_cancel_drops_queued_and_swallows_in_flight():
    sched = JobScheduler()
    job = sched.submit("c", _units(4), CheckerConfig())
    sched.next_unit(lambda _c: True)          # index 0 in flight
    dropped = sched.cancel(job.job_id)
    assert dropped == 3                       # 1..3 never dispatched
    assert sched.cancel(job.job_id) is None   # idempotent
    assert not job.finished                   # still owes the in-flight unit
    assert sched.complete(job.job_id, 0, _result("u0")) == []
    assert job.finished and job.dropped == 4
    assert sched.finish(job.job_id) is job


def test_scheduler_cancel_client_cancels_all_their_jobs():
    sched = JobScheduler()
    mine = sched.submit("me", _units(2), CheckerConfig())
    others = sched.submit("you", _units(2), CheckerConfig())
    cancelled = sched.cancel_client("me")
    assert cancelled == [mine.job_id]
    assert mine.cancelled and not others.cancelled


def test_scheduler_is_deterministic():
    def run():
        sched = JobScheduler()
        sched.submit("a", _units(2, "a"), CheckerConfig(), priority=1)
        sched.submit("b", _units(2, "b"), CheckerConfig(), priority=2)
        sched.submit("a", _units(1, "c"), CheckerConfig(), priority=2)
        order = []
        while True:
            picked = sched.next_unit(lambda _c: True)
            if picked is None:
                break
            order.append((picked[0].job_id, picked[1]))
        return order

    assert run() == run()


# -- warm worker pool -----------------------------------------------------------------


def test_pool_checks_units_and_keeps_cache_warm():
    from repro.engine.cache import SolverQueryCache

    cache = SolverQueryCache()
    pool = WarmWorkerPool(workers=2, cache=cache)
    try:
        pool.submit("t0", WorkUnit(name="a", source=UNSTABLE))
        pool.submit("t1", WorkUnit(name="b", source=UNSTABLE))
        events = pool.drain(timeout=120.0)
        done = {e.task_id: e for e in events if e.kind == "done"}
        assert set(done) == {"t0", "t1"}
        assert all(e.result.error is None for e in done.values())
        assert len(done["t0"].result.report.bugs) >= 2
        # The workers drained their discoveries into the parent cache.
        assert len(cache) > 0
    finally:
        pool.close(drain=False)


def test_pool_survives_worker_death_mid_unit(monkeypatch):
    monkeypatch.setenv(TEST_HOOKS_ENV, "1")
    pool = WarmWorkerPool(workers=2)
    try:
        pool.submit("ok0", WorkUnit(name="ok0", source=UNSTABLE))
        pool.submit("boom", WorkUnit(name="boom", source=UNSTABLE,
                                     meta={CRASH_META_KEY: True}))
        pool.submit("ok1", WorkUnit(name="ok1", source=UNSTABLE))
        events = pool.drain(timeout=120.0)
        kinds = {}
        for event in events:
            kinds.setdefault(event.kind, []).append(event.task_id)
        # The crashed unit was retried (crash lever stripped) and completed;
        # every unit resolved exactly once; the pool is back at strength.
        assert sorted(kinds["done"]) == ["boom", "ok0", "ok1"]
        assert kinds.get("retried") == ["boom"]
        assert "failed" not in kinds
        assert pool.deaths == 1
        assert len(pool.worker_pids) == 2
        assert pool.outstanding == 0
    finally:
        pool.close(drain=False)


def test_pool_reports_failed_after_retries_exhausted(monkeypatch):
    monkeypatch.setenv(TEST_HOOKS_ENV, "1")
    pool = WarmWorkerPool(workers=1, max_retries=0)
    try:
        pool.submit("boom", WorkUnit(name="boom", source=STABLE,
                                     meta={CRASH_META_KEY: True}))
        events = pool.drain(timeout=60.0)
        failed = [e for e in events if e.kind == "failed"]
        assert len(failed) == 1 and failed[0].task_id == "boom"
        assert "died" in failed[0].error
        assert pool.outstanding == 0          # no hang: the task resolved
    finally:
        pool.close(drain=False)


def test_pool_rejects_duplicate_task_ids():
    pool = WarmWorkerPool(workers=1)
    try:
        pool.submit("t", WorkUnit(name="a", source=STABLE))
        with pytest.raises(ValueError):
            pool.submit("t", WorkUnit(name="b", source=STABLE))
    finally:
        pool.close(drain=False)


def test_pool_completed_history_is_bounded():
    """The duplicate-detection set must not grow one entry per unit ever
    processed — the daemon runs for months."""
    pool = WarmWorkerPool(workers=1, completed_history=2)
    try:
        for index in range(4):
            pool.submit(f"t{index}", WorkUnit(name=f"t{index}", source=STABLE))
            events = pool.drain(timeout=120.0)
            assert any(e.kind == "done" and e.task_id == f"t{index}"
                       for e in events)
        assert len(pool._completed) <= 2
        assert len(pool._completed_order) <= 2
        # Recent ids are still rejected as duplicates.
        with pytest.raises(ValueError):
            pool.submit("t3", WorkUnit(name="again", source=STABLE))
    finally:
        pool.close(drain=False)


# -- the daemon gauntlet --------------------------------------------------------------


@pytest.fixture
def serve_socket(tmp_path):
    return str(tmp_path / "serve.sock")


def _start_server(socket_path, **overrides):
    overrides.setdefault("workers", 2)
    config = ServeConfig(socket_path=socket_path, **overrides)
    server = ServeServer(config)
    server.start()
    return server


def test_served_records_match_batch_engine(serve_socket, tmp_path):
    """A served job's stream is the batch engine's stream, byte for byte
    (timing normalized via ``verdict_view``).  One warm worker vs. the
    sequential engine: cache-hit counters are part of the record, so the
    comparison needs equivalent pipelines."""
    from repro.engine.engine import CheckEngine, EngineConfig

    corpus = [("un0.c", UNSTABLE), ("st0.c", STABLE), ("un1.c", UNSTABLE)]
    batch_path = tmp_path / "batch.jsonl"
    CheckEngine(EngineConfig(workers=0, results_path=str(batch_path),
                             checker=CheckerConfig())).check_corpus(corpus)
    batch_units = [json.loads(line)
                   for line in batch_path.read_text().splitlines()
                   if json.loads(line)["type"] == "unit"]

    server = _start_server(serve_socket, workers=1)
    try:
        with ServeClient(serve_socket) as client:
            records = client.check(corpus)
        served_units = [r for r in records if r["type"] == "unit"]
        assert records[-1]["type"] == "run"
        assert len(served_units) == len(batch_units)
        for served, batch in zip(served_units, batch_units):
            assert json.dumps(verdict_view(served), sort_keys=True) == \
                json.dumps(verdict_view(batch), sort_keys=True)
    finally:
        server.close()


def test_concurrent_clients_with_priorities(serve_socket):
    server = _start_server(serve_socket)
    results = {}
    errors = []

    def run_client(name, priority, count):
        try:
            with ServeClient(serve_socket, name=name) as client:
                corpus = [(f"{name}-{i}.c", STABLE) for i in range(count)]
                results[name] = client.check(corpus, priority=priority)
        except Exception as exc:              # surface in the main thread
            errors.append((name, exc))

    try:
        threads = [threading.Thread(target=run_client, args=(name, prio, 3))
                   for name, prio in (("bulk", 0), ("urgent", 9))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        for name in ("bulk", "urgent"):
            units = [r for r in results[name] if r["type"] == "unit"]
            # Each client got exactly its own units, in submission order.
            assert [u["unit"] for u in units] == \
                [f"{name}-{i}.c" for i in range(3)]
            assert results[name][-1]["type"] == "run"
    finally:
        server.close()


def test_quota_and_queue_rejection(serve_socket):
    server = _start_server(serve_socket, client_quota=2, max_queued_units=8)
    try:
        with ServeClient(serve_socket) as client:
            with pytest.raises(SubmitRejected) as excinfo:
                client.submit([(f"u{i}.c", STABLE) for i in range(3)])
            assert excinfo.value.reason == "quota"
            # A conforming job still goes through afterwards.
            records = client.check([("ok.c", STABLE)])
            assert records[-1]["type"] == "run"
    finally:
        server.close()


def test_cancellation_mid_job(serve_socket):
    server = _start_server(serve_socket)
    try:
        with ServeClient(serve_socket) as client:
            corpus = [(f"u{i}.c", UNSTABLE) for i in range(12)]
            job = client.submit(corpus)
            dropped = job.cancel()
            assert dropped > 0
            records = job.wait(timeout=120.0)
            assert job.status == "cancelled"
            # The stream ends with the job's partial run summary.
            assert records[-1]["type"] == "run"
            assert records[-1]["cancelled"] is True
            assert records[-1]["dropped"] >= dropped
            # The daemon keeps serving after a cancellation.
            assert client.check([("after.c", STABLE)])[-1]["type"] == "run"
    finally:
        server.close()


def test_drain_completes_accepted_work_exactly_once(serve_socket):
    """The graceful-drain contract: every accepted unit is emitted exactly
    once, then the daemon stops; post-drain submissions are rejected."""
    server = _start_server(serve_socket)
    corpus = [(f"u{i}.c", STABLE) for i in range(6)]
    with ServeClient(serve_socket) as client:
        job = client.submit(corpus)
        client.drain()
        with pytest.raises(SubmitRejected) as excinfo:
            client.submit([("late.c", STABLE)])
        assert excinfo.value.reason == "draining"
        records = job.wait(timeout=120.0)
    names = [r["unit"] for r in records if r["type"] == "unit"]
    assert names == [name for name, _ in corpus]      # no loss, no dups
    assert records[-1]["type"] == "run"
    assert records[-1]["units"] == len(corpus)
    assert server.serve_forever(timeout=60.0)         # daemon stopped itself
    assert not os.path.exists(serve_socket)


def test_worker_death_through_the_daemon(serve_socket, monkeypatch):
    monkeypatch.setenv(TEST_HOOKS_ENV, "1")
    server = _start_server(serve_socket)
    try:
        with ServeClient(serve_socket) as client:
            units = [WorkUnit(name="ok0.c", source=UNSTABLE),
                     WorkUnit(name="boom.c", source=UNSTABLE,
                              meta={CRASH_META_KEY: True}),
                     WorkUnit(name="ok1.c", source=UNSTABLE)]
            records = client.check(units, timeout=120.0)
            unit_records = [r for r in records if r["type"] == "unit"]
            assert [u["unit"] for u in unit_records] == \
                ["ok0.c", "boom.c", "ok1.c"]
            assert all(u["error"] is None for u in unit_records)
            status = client.status()
            assert status["worker_deaths"] == 1
            assert status["metrics"]["counters"]["serve.units_retried"] == 1
            assert len(status["worker_pids"]) == 2    # back at strength
    finally:
        server.close()


def test_warm_cache_spans_jobs_and_clients(serve_socket, tmp_path):
    cache_path = tmp_path / "cache.jsonl"
    server = _start_server(serve_socket, cache_path=str(cache_path))
    try:
        with ServeClient(serve_socket) as client:
            client.check([("cold.c", UNSTABLE)])
        with ServeClient(serve_socket) as client:   # a different connection
            records = client.check([("warm.c", UNSTABLE)])
            run = records[-1]
            # Alpha-equivalent queries answer from the resident cache.
            assert run["solver_queries"] == 0
            assert run["cache_hits"] > 0
            status = client.status()
            assert status["metrics"]["counters"]["serve.warm_hits"] > 0
    finally:
        server.close()
    assert cache_path.exists()                      # flushed on drain


def test_results_dir_mirrors_the_socket_stream(serve_socket, tmp_path):
    results_dir = tmp_path / "results"
    server = _start_server(serve_socket, results_dir=str(results_dir))
    try:
        with ServeClient(serve_socket) as client:
            job = client.submit([("a.c", UNSTABLE), ("b.c", STABLE)])
            streamed = job.wait(timeout=120.0)
            job_id = job.job_id
    finally:
        server.close()
    on_disk = [json.loads(line) for line in
               (results_dir / f"{job_id}.jsonl").read_text().splitlines()]
    assert on_disk == streamed


def test_status_and_ping(serve_socket):
    server = _start_server(serve_socket)
    try:
        with ServeClient(serve_socket, name="status-probe") as client:
            assert client.ping()
            status = client.status()
            assert status["proto"] == protocol.PROTOCOL_VERSION
            assert status["workers"] == 2
            assert status["clients"] == 1
            assert status["queue_depth"] == 0
            assert "serve.queue_depth" in status["metrics"]["gauges"]
    finally:
        server.close()


def test_status_reports_worker_detail_and_uptime(serve_socket):
    server = _start_server(serve_socket, workers=2)
    try:
        with ServeClient(serve_socket, name="detail-probe") as client:
            client.check([("a.c", STABLE), ("b.c", STABLE), ("c.c", STABLE)])
            status = client.status()
            assert status["uptime_units"] == 3
            detail = status["workers_detail"]
            assert len(detail) == 2
            assert {worker["pid"] for worker in detail} == \
                set(status["worker_pids"])
            assert sum(worker["units_done"] for worker in detail) == 3
            assert all(worker["restarts"] == 0 for worker in detail)
            assert all(worker["state"] in ("idle", "busy")
                       for worker in detail)
            # The snapshot is taken atomically under the scheduler lock: the
            # direct fields and the serve.* gauges describe one instant.
            gauges = status["metrics"]["gauges"]
            assert gauges["serve.queue_depth"] == status["queue_depth"]
            assert gauges["serve.in_flight"] == status["in_flight"]
            assert gauges["serve.active_jobs"] == status["active_jobs"]
    finally:
        server.close()


def test_metrics_op_serves_prometheus_text(serve_socket):
    from repro.obs.promexport import validate_prometheus_text

    server = _start_server(serve_socket, workers=1)
    try:
        with ServeClient(serve_socket, name="scraper") as client:
            client.check([("a.c", UNSTABLE)])
            reply = client.metrics()
            families = validate_prometheus_text(reply["text"])
            assert families["serve_units_completed"]["value"] == 1
            assert families["serve_unit_latency"]["type"] == "histogram"
            assert reply["snapshot"]["counters"]["serve.units_completed"] == 1
    finally:
        server.close()


def test_connecting_to_a_dead_socket_fails_cleanly(tmp_path):
    with pytest.raises(ServeError):
        ServeClient(str(tmp_path / "nobody-home.sock"))


def test_records_racing_the_accept_reply_are_not_lost(tmp_path):
    """Demux regression: a warm-cache job can complete so fast that its
    ``result`` / ``job-done`` messages sit in the same socket read as the
    ``accepted`` reply.  The client's reader must register the job handle
    before touching the next message, or the stream is silently dropped and
    ``records()`` hangs."""
    sock_path = str(tmp_path / "fake.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(sock_path)
    listener.listen(1)

    def fake_server():
        conn, _addr = listener.accept()
        line = protocol.LineSocket(conn)
        while True:
            message = line.receive()
            if message is None:
                break
            if message.get("op") == "hello":
                line.send({"type": "welcome",
                           "proto": protocol.PROTOCOL_VERSION,
                           "client_id": "client-1", "workers": 1})
            elif message.get("op") == "submit":
                # The whole job, one write: accepted + records + done hit
                # the client reader back to back.
                conn.sendall(
                    protocol.encode({"type": "accepted", "job": "job-1",
                                     "units": 1, "priority": 0})
                    + protocol.encode({"type": "result", "job": "job-1",
                                       "record": {"type": "unit",
                                                  "unit": "a.c"}})
                    + protocol.encode({"type": "result", "job": "job-1",
                                       "record": {"type": "run"}})
                    + protocol.encode({"type": "job-done", "job": "job-1",
                                       "status": "ok", "units": 1}))
        conn.close()

    server_thread = threading.Thread(target=fake_server, daemon=True)
    server_thread.start()
    try:
        with ServeClient(sock_path) as client:
            job = client.submit([("a.c", STABLE)])
            records = job.wait(timeout=10.0)
        assert [r["type"] for r in records] == ["unit", "run"]
        assert job.status == "ok"
    finally:
        listener.close()
        server_thread.join(timeout=10)


def test_drain_reaps_wedged_clients(serve_socket):
    """A client that stops reading while it still has undispatched units
    must not hold a drain open forever: after ``drain_stall_timeout`` its
    jobs are cancelled and the daemon finishes draining."""
    server = _start_server(serve_socket, workers=1, outbox_high_water=2,
                           drain_stall_timeout=1.0)
    # Raw socket client so the test controls reads exactly: ~1 MiB of meta
    # per record overwhelms the kernel socket buffers, wedging the server's
    # writer thread and pinning the outbox at high-water.
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(serve_socket)
    try:
        line = protocol.LineSocket(conn)
        units = [WorkUnit(name=f"u{i}.c", source=STABLE,
                          meta={"pad": "x" * (1 << 20)}) for i in range(8)]
        line.send(protocol.submit_message(units))
        accepted = line.receive()
        assert accepted["type"] == "accepted"
        # Stop reading entirely; give the pool a moment to produce output.
        time.sleep(0.5)
        server.request_drain(reason="test")
        assert server.serve_forever(timeout=60.0), \
            "drain wedged on a non-reading client"
        # The drain completed *because* the wedged client was reaped.
        counters = server.metrics.snapshot()["counters"]
        assert counters.get("serve.clients_reaped", 0) == 1
    finally:
        conn.close()


def test_job_trace_grafts_under_server_root(serve_socket, tmp_path):
    trace_path = tmp_path / "serve-trace.json"
    server = _start_server(serve_socket, trace_path=str(trace_path))
    try:
        with ServeClient(serve_socket) as client:
            client.check([("traced.c", UNSTABLE)])
    finally:
        server.close()
    from repro.obs.chrometrace import validate_chrome_trace

    document = json.loads(trace_path.read_text(encoding="utf-8"))
    validate_chrome_trace(document)
    names = [event["name"] for event in document["traceEvents"]]
    assert "serve" in names
    assert any(name.startswith("job:") for name in names)
    assert any(name.startswith("unit:") for name in names)


# -- the serve / submit CLI (the CI serve-smoke gauntlet) -----------------------------


def _repo_env():
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return env


def test_serve_cli_smoke(tmp_path):
    """Daemon CLI end to end: start, serve two clients, drain on SIGTERM,
    leak no processes."""
    sock = str(tmp_path / "cli.sock")
    env = _repo_env()
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    try:
        banner = daemon.stdout.readline()
        assert "serve: listening" in banner
        worker_pids = [int(token) for token in
                       banner.rsplit(":", 1)[1].strip(" )\n").split()]
        assert len(worker_pids) == 2

        source = tmp_path / "unit.c"
        source.write_text(UNSTABLE, encoding="utf-8")
        submit = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--socket", sock,
             str(source)],
            capture_output=True, text=True, env=env, timeout=120)
        assert submit.returncode == 1         # diagnostics found
        records = [json.loads(line) for line in submit.stdout.splitlines()]
        assert [r["type"] for r in records] == ["unit", "run"]

        stdin_run = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--socket", sock,
             "--stdin"],
            input=STABLE, capture_output=True, text=True, env=env,
            timeout=120)
        assert stdin_run.returncode == 0

        status = subprocess.run(
            [sys.executable, "-m", "repro", "submit", "--socket", sock,
             "--status"],
            capture_output=True, text=True, env=env, timeout=60)
        assert json.loads(status.stdout)["workers"] == 2

        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=60) == 0
        assert "drained" in daemon.stdout.read()
        deadline = time.monotonic() + 10
        leaked = worker_pids
        while leaked and time.monotonic() < deadline:
            leaked = [pid for pid in worker_pids if _alive(pid)]
            time.sleep(0.1)
        assert not leaked, f"leaked worker processes: {leaked}"
        assert not os.path.exists(sock)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)


def _alive(pid):
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def test_submit_cli_without_daemon_exits_2(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "submit", "--socket",
         str(tmp_path / "absent.sock"), "--stdin"],
        input=STABLE, capture_output=True, text=True, env=_repo_env(),
        timeout=60)
    assert result.returncode == 2
    assert "cannot connect" in result.stderr
