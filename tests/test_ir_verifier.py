"""Error-path coverage for the IR verifier.

The happy paths (valid functions verify clean) are exercised throughout the
suite; these tests pin down the *diagnoses*: unterminated blocks, phi
arity/predecessor mismatches, and SSA dominance violations (use before def
within a block and across blocks).
"""

import pytest

from repro.api import compile_source
from repro.ir import (
    Function,
    FunctionType,
    ICmpPred,
    INT32,
    IRBuilder,
    Module,
)
from repro.ir.instructions import Phi
from repro.ir.values import Constant
from repro.ir.verifier import VerificationError, verify_function, verify_module


def make_function(name="f", params=(INT32,), param_names=("x",)):
    func = Function(name, FunctionType(INT32, tuple(params)), param_names)
    return func, IRBuilder(func)


def build_diamond():
    """if (x < 10) a = x + 1 else b = x + 2; return phi(a, b)."""
    func, builder = make_function()
    x = func.argument("x")
    then_bb = builder.new_block("then")
    else_bb = builder.new_block("else")
    join_bb = builder.new_block("join")
    cond = builder.icmp(ICmpPred.SLT, x, builder.const_int(INT32, 10))
    builder.cond_br(cond, then_bb, else_bb)
    builder.set_block(then_bb)
    a = builder.add(x, builder.const_int(INT32, 1), "a")
    builder.br(join_bb)
    builder.set_block(else_bb)
    b = builder.add(x, builder.const_int(INT32, 2), "b")
    builder.br(join_bb)
    builder.set_block(join_bb)
    phi = builder.phi(INT32, "y")
    phi.add_incoming(a, then_bb)
    phi.add_incoming(b, else_bb)
    builder.ret(phi)
    return func, then_bb, else_bb, join_bb, a, b, phi


def test_valid_diamond_verifies_clean():
    func, *_ = build_diamond()
    assert verify_function(func) == []


def test_unterminated_block():
    func, builder = make_function()
    builder.add(func.argument("x"), builder.const_int(INT32, 1))
    problems = verify_function(func)
    assert any("not terminated" in p for p in problems)


def test_unterminated_side_block():
    func, *_rest = build_diamond()
    side = func.block_by_name("else")
    side.instructions.pop()              # drop the branch terminator
    problems = verify_function(func)
    assert any("%else" in p and "not terminated" in p for p in problems)


def test_phi_missing_incoming_for_predecessor():
    func, then_bb, else_bb, join_bb, a, b, phi = build_diamond()
    phi.incoming = [(value, block) for value, block in phi.incoming
                    if block is not else_bb]
    problems = verify_function(func)
    assert any("missing an incoming value" in p for p in problems)


def test_phi_incoming_from_non_predecessor():
    func, then_bb, else_bb, join_bb, a, b, phi = build_diamond()
    stray = func.add_block("stray")      # no edge into join
    phi.add_incoming(Constant(INT32, 3), stray)
    problems = verify_function(func)
    assert any("non-predecessor" in p for p in problems)
    # The stray block is also unterminated; both problems surface at once.
    assert any("%stray" in p and "not terminated" in p for p in problems)


def test_use_before_def_in_same_block():
    func, builder = make_function()
    x = func.argument("x")
    first = builder.add(x, builder.const_int(INT32, 1), "first")
    second = builder.add(x, builder.const_int(INT32, 2), "second")
    builder.ret(second)
    # %first now reads %second, which is only defined later in the block.
    first.replace_operand(x, second)
    problems = verify_function(func)
    assert any("used before its definition" in p for p in problems)


def test_use_before_def_across_blocks():
    func, then_bb, else_bb, join_bb, a, b, phi = build_diamond()
    # Make the then-branch value consume the else-branch value: %else does
    # not dominate %then, so this is an SSA violation.
    a.replace_operand(func.argument("x"), b)
    problems = verify_function(func)
    assert any("not dominated by its definition" in p for p in problems)


def test_use_of_value_outside_function():
    func, builder = make_function()
    other, other_builder = make_function("other")
    foreign = other_builder.add(other.argument("x"),
                                other_builder.const_int(INT32, 1), "foreign")
    other_builder.ret(foreign)
    builder.ret(builder.add(foreign, builder.const_int(INT32, 1)))
    problems = verify_function(func)
    assert any("not in the function" in p for p in problems)


def test_loop_carried_phi_is_legal():
    # while (i < x) i = i + 1; return i;  -- the back edge carries %next.
    func, builder = make_function()
    x = func.argument("x")
    header = builder.new_block("header")
    body = builder.new_block("body")
    exit_bb = builder.new_block("exit")
    builder.br(header)
    builder.set_block(header)
    phi = builder.phi(INT32, "i")
    cond = builder.icmp(ICmpPred.SLT, phi, x)
    builder.cond_br(cond, body, exit_bb)
    builder.set_block(body)
    nxt = builder.add(phi, builder.const_int(INT32, 1), "next")
    builder.br(header)
    builder.set_block(exit_bb)
    builder.ret(phi)
    phi.add_incoming(builder.const_int(INT32, 0), func.entry)
    phi.add_incoming(nxt, body)
    assert verify_function(func) == []


def test_verify_module_raises_with_all_problems():
    func, builder = make_function()
    builder.add(func.argument("x"), builder.const_int(INT32, 1))
    module = Module("bad")
    module.add_function(func)
    with pytest.raises(VerificationError) as excinfo:
        verify_module(module)
    assert excinfo.value.problems
    assert "not terminated" in str(excinfo.value)
    assert verify_module(module, raise_on_error=False) == excinfo.value.problems


def test_lowered_modules_satisfy_dominance():
    # The frontend's output must pass the strengthened verifier, loops and
    # phis included.
    module = compile_source("""
        int sum(int n) {
            int t = 0;
            for (int i = 0; i < n; i = i + 1)
                t = t + i;
            return t;
        }
        int guard(char *p, unsigned int n) {
            if (p + n < p) return -1;
            return 0;
        }
    """)
    assert verify_module(module) == []


def test_phi_edge_from_unreachable_predecessor_is_vacuously_legal():
    # entry -> join, plus an unreachable block dead -> join.  The phi's
    # incoming value for the dead edge can never be read, so SSA dominance
    # is vacuous there (LLVM's verifier skips such edges too).
    func, builder = make_function()
    x = func.argument("x")
    join = builder.new_block("join")
    dead = builder.new_block("dead")
    added = builder.add(x, builder.const_int(INT32, 1), "added")
    builder.br(join)
    builder.set_block(dead)
    doubled = builder.add(x, builder.const_int(INT32, 2), "doubled")
    builder.br(join)
    builder.set_block(join)
    phi = builder.phi(INT32, "p")
    phi.add_incoming(added, func.entry)
    phi.add_incoming(doubled, dead)
    builder.ret(phi)
    assert verify_function(func) == []
