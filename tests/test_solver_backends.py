"""Unit tests for the pluggable backend layer (repro.solver.backends).

Registry resolution, the oracle pre-answer chain, DIMACS emit/parse
canonicalization, the portfolio race (deterministic tie-break, loser
cancellation, disagreement detection), and the facade wiring
(``Solver(backend=...)`` / ``Solver(portfolio=...)``, per-backend win
counters, graceful degradation for unavailable members).

Everything here runs with the dependency-free builtin backend; the
``dimacs`` paths are driven through the bundled reference CLI
(``repro.solver.backends.selfsolve``) so no native solver is needed.
"""

import subprocess
import sys
import time

import pytest

from repro.solver import CheckResult, Solver, TermManager
from repro.solver.backends import (
    BACKENDS,
    BackendAnswer,
    BackendDisagreement,
    BuiltinBackend,
    DimacsBackend,
    PortfolioSolver,
    PysatBackend,
    SAT_BINARY_ENV,
    SolverBackend,
    available_backends,
    constant_answer,
    create_backend,
    evaluation_answer,
    preanswer,
    resolve_portfolio,
)
from repro.solver.backends.dimacs import parse_solver_output
from repro.solver.backends.selfsolve import solve_dimacs_text
from repro.solver.cnf import CnfBuilder, emit_dimacs, parse_dimacs
from repro.solver.sat import SatResult, SatSolver

SELFSOLVE = f"{sys.executable} -m repro.solver.backends.selfsolve"


@pytest.fixture()
def mgr():
    return TermManager()


@pytest.fixture()
def selfsolve_env(monkeypatch):
    monkeypatch.setenv(SAT_BINARY_ENV, SELFSOLVE)


# -- registry ----------------------------------------------------------------------


class TestRegistry:
    def test_builtin_always_available(self):
        assert "builtin" in available_backends()
        assert isinstance(create_backend("builtin"), BuiltinBackend)

    def test_registry_names(self):
        assert set(BACKENDS) == {"builtin", "pysat", "dimacs"}

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            create_backend("boolector")
        with pytest.raises(ValueError, match="unknown solver backend"):
            resolve_portfolio(["builtin", "boolector"])

    def test_unavailable_member_dropped_silently(self, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        resolved = resolve_portfolio(["builtin", "dimacs"])
        assert resolved == ["builtin"]

    def test_empty_resolution_falls_back_to_builtin(self, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        assert resolve_portfolio(["dimacs"]) == ["builtin"]

    def test_strict_resolution_raises_for_unavailable(self, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        with pytest.raises(RuntimeError, match="not available"):
            resolve_portfolio(["dimacs"], strict=True)

    def test_dimacs_available_iff_env_set(self, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        assert not DimacsBackend.available()
        monkeypatch.setenv(SAT_BINARY_ENV, SELFSOLVE)
        assert DimacsBackend.available()

    def test_pysat_availability_matches_import(self):
        try:
            import pysat.solvers  # noqa: F401
            assert PysatBackend.available()
        except ImportError:
            assert not PysatBackend.available()


# -- oracle pre-answers -------------------------------------------------------------


class TestOracle:
    def test_constant_true(self, mgr):
        answer = constant_answer(mgr.true())
        assert answer.verdict == "sat" and answer.reason == "constant"

    def test_constant_false(self, mgr):
        answer = constant_answer(mgr.false())
        assert answer.verdict == "unsat" and answer.assignment is None

    def test_non_constant_defers(self, mgr):
        assert constant_answer(mgr.bool_var("p")) is None

    def test_evaluation_answer_is_verified(self, mgr):
        x = mgr.bv_var("x", 8)
        conjunction = mgr.eq(x, mgr.bv_const(0, 8))
        answer = evaluation_answer(mgr, conjunction)
        assert answer is not None and answer.verdict == "sat"
        assert mgr.evaluate(conjunction, answer.assignment)

    def test_evaluation_never_claims_unsat(self, mgr):
        x = mgr.bv_var("x", 8)
        # UNSAT conjunction: the oracle must defer, not decide.
        conjunction = mgr.and_(mgr.bvult(x, mgr.bv_const(3, 8)),
                               mgr.bvugt(x, mgr.bv_const(5, 8)))
        assert evaluation_answer(mgr, conjunction) is None

    def test_preanswer_counts_in_solver_stats(self, mgr):
        solver = Solver(mgr, timeout=20.0)
        x = mgr.bv_var("x", 8)
        solver.add(mgr.eq(x, mgr.bv_const(0, 8)))
        assert solver.check() is CheckResult.SAT
        assert solver.stats.oracle_sat == 1
        assert solver.stats.sat_calls == 0        # never reached a backend
        assert preanswer(mgr, mgr.false()).verdict == "unsat"


# -- DIMACS emit / parse ------------------------------------------------------------


class TestDimacsFormat:
    def test_canonical_numbering_is_sorted_and_dense(self):
        clauses = [[9, -4], [4, 2, -9]]
        text = emit_dimacs(clauses)
        # Used vars {2, 4, 9} remap to {1, 2, 3}; literals sort by
        # (variable, polarity) within each clause.
        assert text.splitlines() == ["p cnf 3 2", "-2 3 0", "1 2 -3 0"]

    def test_canonical_export_is_byte_stable_across_gaps(self):
        # Same clause structure, different absolute numbering: the export
        # must not leak allocation gaps.
        a = emit_dimacs([[1, -3], [3, 2]])
        b = emit_dimacs([[10, -30], [30, 20]])
        assert a == b

    def test_non_canonical_keeps_original_numbering(self):
        text = emit_dimacs([[9, -4]], canonical=False)
        assert text.splitlines() == ["p cnf 9 1", "-4 9 0"]

    def test_roundtrip(self):
        clauses = [[1, 2], [-2, 3], [-1, -3]]
        num_vars, parsed = parse_dimacs(emit_dimacs(clauses))
        assert num_vars == 3
        assert parsed == [[1, 2], [-2, 3], [-1, -3]]

    def test_parse_tolerates_comments_and_multiline_clauses(self):
        text = "c header\np cnf 3 2\n1 2\n0\nc mid\n-2 -3 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, 2], [-2, -3]]

    def test_parse_rejects_malformed_problem_line(self):
        with pytest.raises(ValueError, match="problem line"):
            parse_dimacs("p dnf 3 2\n1 0\n")

    def test_recording_builder_captures_clause_stream(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat, record=True)
        a, b = cnf.new_lit(), cnf.new_lit()
        cnf.add_clause([a, b])
        # The stream includes the builder's internal true-var clause.
        assert cnf.clauses[0] == [cnf.true_lit]
        assert cnf.clauses[-1] == [a, b]
        assert len(cnf.clauses) == cnf.num_clauses


# -- the reference DIMACS CLI -------------------------------------------------------


class TestSelfsolve:
    def test_sat_instance(self):
        result, model = solve_dimacs_text("p cnf 2 2\n1 2 0\n-1 0\n")
        assert result is SatResult.SAT
        assert -1 in model and 2 in model

    def test_unsat_instance(self):
        result, _ = solve_dimacs_text("p cnf 1 2\n1 0\n-1 0\n")
        assert result is SatResult.UNSAT

    def test_cli_protocol_and_exit_codes(self, tmp_path):
        path = tmp_path / "q.cnf"
        path.write_text("p cnf 2 2\n1 2 0\n-1 0\n", encoding="utf-8")
        proc = subprocess.run([sys.executable, "-m",
                               "repro.solver.backends.selfsolve", str(path)],
                              capture_output=True, text=True)
        assert proc.returncode == 10
        status, model = parse_solver_output(proc.stdout)
        assert status is SatResult.SAT
        assert model[1] is False and model[2] is True

        path.write_text("p cnf 1 2\n1 0\n-1 0\n", encoding="utf-8")
        proc = subprocess.run([sys.executable, "-m",
                               "repro.solver.backends.selfsolve", str(path)],
                              capture_output=True, text=True)
        assert proc.returncode == 20
        assert "s UNSATISFIABLE" in proc.stdout


# -- portfolio race -----------------------------------------------------------------


class _StubBackend(SolverBackend):
    """Scriptable backend: fixed result, optional delay, interrupt-aware."""

    def __init__(self, name, result, model=None, delay=0.0):
        self.name = name
        self._result = result
        self._model = model or {}
        self._delay = delay
        self.interrupted = False

    def ensure_vars(self, num_vars):
        pass

    def add_clauses(self, clauses):
        pass

    def solve(self, assumptions=(), max_conflicts=None, timeout=None):
        deadline = time.monotonic() + self._delay
        while time.monotonic() < deadline:
            if self.interrupted:
                return BackendAnswer(result=SatResult.UNKNOWN)
            time.sleep(0.005)
        return BackendAnswer(result=self._result, model=dict(self._model))

    def interrupt(self):
        self.interrupted = True


class TestPortfolio:
    def test_single_member_runs_inline(self):
        stub = _StubBackend("only", SatResult.SAT, model={1: True})
        answer = PortfolioSolver([stub]).solve()
        assert answer.result is SatResult.SAT
        assert answer.winner == "only"
        assert answer.model_value(1) is True

    def test_tie_break_is_configured_order(self):
        # Both answer SAT immediately; the first configured member must be
        # credited regardless of thread scheduling.
        first = _StubBackend("first", SatResult.SAT, model={1: True})
        second = _StubBackend("second", SatResult.SAT, model={1: False})
        for _ in range(5):
            answer = PortfolioSolver([first, second]).solve()
            assert answer.winner == "first"
            assert answer.model_value(1) is True

    def test_definitive_answer_cancels_losers(self):
        fast = _StubBackend("fast", SatResult.UNSAT)
        slow = _StubBackend("slow", SatResult.SAT, delay=30.0)
        started = time.monotonic()
        answer = PortfolioSolver([slow, fast]).solve()
        assert time.monotonic() - started < 10.0
        assert answer.result is SatResult.UNSAT
        assert answer.winner == "fast"
        assert slow.interrupted

    def test_unknown_only_when_all_exhaust(self):
        answer = PortfolioSolver([
            _StubBackend("a", SatResult.UNKNOWN),
            _StubBackend("b", SatResult.UNKNOWN)]).solve()
        assert answer.result is SatResult.UNKNOWN
        assert answer.winner is None
        assert answer.verdicts == {"a": "unknown", "b": "unknown"}

    def test_disagreement_raises(self):
        lying = PortfolioSolver([_StubBackend("a", SatResult.SAT),
                                 _StubBackend("b", SatResult.UNSAT)])
        with pytest.raises(BackendDisagreement):
            lying.solve()

    def test_crashed_member_does_not_sink_the_race(self):
        class Crashing(_StubBackend):
            def solve(self, assumptions=(), max_conflicts=None, timeout=None):
                raise RuntimeError("backend died")

        answer = PortfolioSolver([Crashing("bad", SatResult.UNKNOWN),
                                  _StubBackend("good", SatResult.SAT)]).solve()
        assert answer.result is SatResult.SAT
        assert answer.winner == "good"
        assert answer.verdicts["bad"] == "error"

    def test_feed_is_cursor_sliced(self):
        class Recording(_StubBackend):
            def __init__(self):
                super().__init__("rec", SatResult.UNKNOWN)
                self.received = []

            def add_clauses(self, clauses):
                self.received.extend(list(c) for c in clauses)

        member = Recording()
        portfolio = PortfolioSolver([member])
        portfolio.feed(2, [[1], [1, 2]])
        portfolio.feed(3, [[1], [1, 2], [-3]])
        assert member.received == [[1], [1, 2], [-3]]


# -- facade wiring ------------------------------------------------------------------


def _unstable_query(mgr, solver):
    # x*x == 225 with x > 3: SAT only at the two square roots, which no
    # oracle pattern hits — the query must reach a real backend.
    x = mgr.bv_var("x", 8)
    solver.add(mgr.eq(mgr.bvmul(x, x), mgr.bv_const(225, 8)))
    solver.add(mgr.bvult(mgr.bv_const(3, 8), x))
    return x


class TestSolverFacade:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_builtin_backend_matches_direct_path(self, mgr, incremental):
        direct = Solver(mgr, timeout=20.0, incremental=incremental)
        routed = Solver(mgr, timeout=20.0, incremental=incremental,
                        backend="builtin")
        for solver in (direct, routed):
            _unstable_query(mgr, solver)
        assert direct.check() is routed.check() is CheckResult.SAT
        assert direct.model()["x"] in (15, 241)
        assert routed.model()["x"] in (15, 241)
        assert routed.stats.backend_wins == {"builtin": 1}
        assert direct.stats.backend_wins == {}

    def test_backend_and_portfolio_are_mutually_exclusive(self, mgr):
        with pytest.raises(ValueError, match="not both"):
            Solver(mgr, backend="builtin", portfolio=("builtin",))

    def test_explicit_unavailable_backend_raises(self, mgr, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        with pytest.raises(RuntimeError, match="not available"):
            Solver(mgr, backend="dimacs")

    def test_portfolio_degrades_to_builtin(self, mgr, monkeypatch):
        monkeypatch.delenv(SAT_BINARY_ENV, raising=False)
        solver = Solver(mgr, timeout=20.0, portfolio=("dimacs", "pysat"))
        if "pysat" in available_backends():
            assert solver.backend_names == ["pysat"]
        else:
            assert solver.backend_names == ["builtin"]

    @pytest.mark.parametrize("incremental", [False, True])
    def test_dimacs_backend_through_selfsolve(self, mgr, selfsolve_env,
                                              incremental):
        solver = Solver(mgr, timeout=60.0, incremental=incremental,
                        backend="dimacs")
        x = _unstable_query(mgr, solver)
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] in (15, 241)
        bad = mgr.eq(x, mgr.bv_const(0, 8))
        assert solver.check(assumptions=[bad]) is CheckResult.UNSAT
        assert solver.failed_assumptions() == [bad]
        assert solver.stats.backend_wins == {"dimacs": 2}

    def test_portfolio_race_on_real_query(self, mgr, selfsolve_env):
        solver = Solver(mgr, timeout=60.0, incremental=True,
                        portfolio=("builtin", "dimacs"))
        _unstable_query(mgr, solver)
        assert solver.check() is CheckResult.SAT
        assert sum(solver.stats.backend_wins.values()) == 1
        assert set(solver.stats.backend_wins) <= {"builtin", "dimacs"}

    def test_backend_push_pop(self, mgr, selfsolve_env):
        solver = Solver(mgr, timeout=60.0, incremental=True,
                        backend="dimacs")
        x = mgr.bv_var("x", 8)
        solver.add(mgr.bvult(x, mgr.bv_const(100, 8)))
        solver.push()
        # A contradiction the oracle cannot see (it would need two passes):
        # x < 100 and x*x == 255 has no solution in 8 bits.
        solver.add(mgr.eq(mgr.bvmul(x, x), mgr.bv_const(255, 8)))
        assert solver.check() is CheckResult.UNSAT
        solver.pop()
        _unstable_query(mgr, solver)
        assert solver.check() is CheckResult.SAT
