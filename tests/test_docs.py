"""Docs stay executable: run every fenced python block in the documentation.

Each ```python block in README.md and docs/*.md is compiled and executed in
its own namespace (with the working directory pointed at a temp dir, so
blocks that write cache/result files stay self-contained).  Blocks are
required to be self-contained — that is the documentation contract this
test enforces, so examples cannot drift from the API.  The quickstart
example runs as a script, the way the README tells users to run it.
"""

import re
import runpy
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _doc_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _python_blocks():
    """Yield (doc name, block index, source) for every fenced python block."""
    for path in _doc_files():
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCED_PYTHON.finditer(text)):
            label = f"{path.relative_to(REPO_ROOT)}#{index}"
            yield pytest.param(label, match.group(1), id=label)


_BLOCKS = list(_python_blocks())


def test_docs_contain_python_blocks():
    """The suite below must actually be exercising something."""
    assert len(_BLOCKS) >= 3


@pytest.mark.parametrize("label,source", _BLOCKS)
def test_doc_python_block_executes(label, source, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = compile(source, label, "exec")
    namespace = {"__name__": "__docs__"}
    exec(code, namespace)


def test_quickstart_example_runs(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(REPO_ROOT / "examples" / "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    # The quickstart's two canonical bugs must still be reported.
    assert "unstable code" in out
    assert "warning(s)" in out
