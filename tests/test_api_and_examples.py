"""Tests for the top-level API, report classification, and the example scripts."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import (
    CheckerConfig,
    StackChecker,
    check_function,
    check_module,
    check_source,
    compile_source,
)
from repro.core.classify import BugClass, classify_diagnostic
from repro.core.report import Algorithm, BugReport, Diagnostic, MinimalUBSet
from repro.core.ubconditions import UBCondition, UBKind
from repro.ir.source import SourceLocation

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_compile_source_returns_module(self):
        module = compile_source("int f(int a) { return a + 1; }")
        assert module.get_function("f") is not None

    def test_check_module_and_function(self):
        module = compile_source("""
            int f(int *p) { int x = *p; if (!p) return -1; return x; }
        """)
        report = check_module(module)
        assert report.bugs
        function_report = check_function(module.get_function("f"))
        assert function_report.diagnostics

    def test_check_source_with_config(self):
        config = CheckerConfig(minimize_ub_sets=False)
        report = check_source("int f(int x) { if (x + 1 < x) return 1; return 0; }",
                              config=config)
        assert report.bugs

    def test_lazy_top_level_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        assert repro.StackChecker is StackChecker
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_multiple_functions_independent_reports(self):
        report = check_source("""
            int good(int a, int b) { if (b == 0) return 0; return a / b; }
            int bad(int x) { if (x + 100 < x) return -1; return 0; }
        """)
        functions = {f.function for f in report.functions}
        assert functions == {"good", "bad"}
        assert all(b.function == "bad" for b in report.bugs)


class TestClassification:
    def _diagnostic(self, kinds):
        conditions = []
        return Diagnostic(
            function="f", location=SourceLocation("f.c", 1, 1),
            algorithm=Algorithm.SIMPLIFY_BOOLEAN, message="m",
            ub_set=MinimalUBSet(conditions) if not kinds else _fake_set(kinds))

    def test_known_label_wins(self):
        diagnostic = self._diagnostic([UBKind.NULL_DEREF])
        assert classify_diagnostic(diagnostic, known_label=BugClass.REDUNDANT) \
            is BugClass.REDUNDANT

    def test_empty_ub_set_is_redundant(self):
        diagnostic = self._diagnostic([])
        assert classify_diagnostic(diagnostic) is BugClass.REDUNDANT

    def test_unconditional_ub_is_non_optimization(self):
        diagnostic = self._diagnostic([UBKind.NULL_DEREF])
        assert classify_diagnostic(diagnostic, ub_executes_unconditionally=True) \
            is BugClass.NON_OPTIMIZATION

    def test_current_compiler_discard_is_urgent(self):
        diagnostic = self._diagnostic([UBKind.DIV_BY_ZERO])
        assert classify_diagnostic(diagnostic, discarded_by_current_compiler=True) \
            is BugClass.URGENT_OPTIMIZATION

    def test_unexploited_kind_is_time_bomb(self):
        diagnostic = self._diagnostic([UBKind.MEMCPY_OVERLAP])
        assert classify_diagnostic(diagnostic) is BugClass.TIME_BOMB

    def test_bug_class_reality(self):
        assert BugClass.REDUNDANT.is_real_bug is False
        assert BugClass.TIME_BOMB.is_real_bug is True


def _fake_set(kinds):
    from repro.ir.instructions import Return
    conditions = []
    for kind in kinds:
        inst = Return(None)
        from repro.solver.terms import TermManager
        manager = TermManager()
        conditions.append(UBCondition(kind, manager.bool_var("u"), inst))
    return MinimalUBSet(conditions)


class TestReports:
    def test_bug_report_merge_and_counters(self):
        first = check_source("int f(int x) { if (x + 1 < x) return 1; return 0; }")
        second = check_source("int g(int *p) { int v = *p; if (!p) return 1; return v; }")
        first.merge(second)
        assert len(first.bugs) >= 2
        assert first.queries > 0

    def test_diagnostic_describe_mentions_everything(self):
        report = check_source("int f(int x) { if (x + 1 < x) return 1; return 0; }")
        bug = report.bugs[0]
        text = bug.describe()
        assert "unstable code" in text
        assert bug.function in text


@pytest.mark.parametrize("script", ["quickstart.py", "postgres_division.py",
                                    "kernel_null_check.py"])
def test_example_scripts_run(script, capsys):
    """The example programs must run end-to-end and print diagnostics."""
    path = EXAMPLES_DIR / script
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert "unstable" in output or "warning" in output
