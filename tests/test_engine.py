"""Tests for the parallel corpus-checking engine (repro.engine).

Covers the acceptance surface of the engine PR: content-addressed cache
hit/miss and budget semantics, disk round-trip of the cache, parallel vs.
sequential result equivalence over the built-in snippet corpus, warm-cache
reruns issuing strictly fewer solver queries, timeout escalation, the JSONL
result sink, and the CheckerConfig.describe() helper.
"""

import json
import os

import pytest

from repro.api import check_corpus, check_source
from repro.core.checker import CheckerConfig
from repro.core.report import diagnostic_signature, report_signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS, snippet_by_name
from repro.engine.cache import (
    SolverQueryCache,
    VERDICT_SAT,
    VERDICT_UNKNOWN,
    VERDICT_UNSAT,
    canonical_query_key,
)
from repro.engine.engine import CheckEngine, EngineConfig
from repro.engine.workunit import WorkUnit, check_work_unit, escalate_config
from repro.solver.terms import TermManager


def corpus_units(suffix="eq"):
    """The built-in snippet corpus as (name, source) work units."""
    return [(s.name, s.render(suffix)) for s in SNIPPETS + STABLE_SNIPPETS]


def diagnostics_signature(result):
    """Everything that identifies a diagnostic, including its minimal UB set."""
    out = []
    for report in result.reports:
        out.extend(diagnostic_signature(d) for d in report.bugs)
    return out


# -- shared runs over the built-in corpus (computed once per module) -----------------


@pytest.fixture(scope="module")
def cache_file(tmp_path_factory):
    return str(tmp_path_factory.mktemp("engine") / "cache.jsonl")


@pytest.fixture(scope="module")
def cold_run(cache_file, tmp_path_factory):
    results = str(tmp_path_factory.mktemp("engine-results") / "results.jsonl")
    result = check_corpus(corpus_units(), workers=0,
                          cache_path=cache_file, results_path=results)
    result._results_path = results
    return result


@pytest.fixture(scope="module")
def parallel_run():
    return check_corpus(corpus_units(), workers=2)


@pytest.fixture(scope="module")
def warm_run(cache_file, cold_run):
    return check_corpus(corpus_units(), workers=2, cache_path=cache_file)


# -- canonical query keys -------------------------------------------------------------


def test_canonical_key_alpha_renames_variables():
    mgr = TermManager()
    a = mgr.bvadd(mgr.bv_var("f.arg.x", 32), mgr.bv_var("f.arg.y", 32))
    b = mgr.bvadd(mgr.bv_var("g.arg.p", 32), mgr.bv_var("g.arg.q", 32))
    zero = mgr.bv_const(0, 32)
    assert canonical_query_key([mgr.eq(a, zero)]) == \
        canonical_query_key([mgr.eq(b, zero)])


def test_canonical_key_distinguishes_structure():
    mgr = TermManager()
    x = mgr.bv_var("x", 32)
    y = mgr.bv_var("y", 32)
    zero = mgr.bv_const(0, 32)
    add = canonical_query_key([mgr.eq(mgr.bvadd(x, y), zero)])
    sub = canonical_query_key([mgr.eq(mgr.bvsub(x, y), zero)])
    const = canonical_query_key([mgr.eq(mgr.bvadd(x, mgr.bv_const(1, 32)), zero)])
    assert len({add, sub, const}) == 3


def test_canonical_key_is_width_sensitive():
    mgr = TermManager()
    k32 = canonical_query_key([mgr.eq(mgr.bv_var("x", 32), mgr.bv_const(0, 32))])
    k64 = canonical_query_key([mgr.eq(mgr.bv_var("x", 64), mgr.bv_const(0, 64))])
    assert k32 != k64


def test_canonical_key_ignores_variable_creation_order():
    # Regression: commutative operands are ordered by term id, i.e. by
    # creation order, so two encodings of the same function that merely
    # *introduced* variables in a different order used to produce different
    # keys.  The key must depend on structure alone.
    def key(first, second):
        mgr = TermManager()
        a = mgr.bv_var(first, 32)
        b = mgr.bv_var(second, 32)
        x, y = (a, b) if first == "x" else (b, a)
        query = mgr.eq(mgr.bvsub(mgr.bvadd(x, y), x), mgr.bv_const(0, 32))
        return canonical_query_key([query])

    assert key("x", "y") == key("y", "x")


def test_canonical_key_ignores_commutative_order_with_distinct_shapes():
    # The subterms must be told apart structurally (sext of different
    # sources), not by name or age — one refinement round is not enough for
    # this shape, so it pins the iterative coloring.
    def key(order):
        mgr = TermManager()
        a = mgr.sext(mgr.bv_var("a", 8), 24)
        b = mgr.sext(mgr.bv_var("b", 16), 16)
        wide_a = mgr.bvadd(a, mgr.bv_const(1, 32))
        operands = (wide_a, b) if order else (b, wide_a)
        return canonical_query_key([mgr.eq(mgr.bvadd(*operands),
                                           mgr.bv_const(0, 32))])

    assert key(True) == key(False)


def test_alpha_renamed_functions_share_cache_entries():
    # End to end: checking two instances of one snippet template must
    # replay every verdict of the first instance from the cache.
    cache = SolverQueryCache()
    config = CheckerConfig()
    first = check_work_unit(
        WorkUnit(name="a", source=SNIPPETS[0].render("a")), config,
        cache=cache, drain_cache=False)
    misses_after_first = cache.misses
    second = check_work_unit(
        WorkUnit(name="b", source=SNIPPETS[0].render("b")), config,
        cache=cache, drain_cache=False)
    assert cache.misses == misses_after_first     # no new solver work at all
    assert sum(fr.cache_hits for fr in second.report.functions) == \
        sum(fr.queries for fr in second.report.functions)
    # Same verdicts modulo the renamed identity (function name, filename).
    assert [sig[2:] for sig in report_signature(first.report)] == \
        [sig[2:] for sig in report_signature(second.report)]


# -- cache semantics ------------------------------------------------------------------


def test_cache_hit_miss_counters():
    cache = SolverQueryCache()
    assert cache.lookup("k1") is None
    cache.store("k1", VERDICT_UNSAT, timeout=5.0, max_conflicts=100)
    assert cache.lookup("k1") == VERDICT_UNSAT
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_cache_unknown_is_budget_qualified():
    cache = SolverQueryCache()
    cache.store("k", VERDICT_UNKNOWN, timeout=1.0, max_conflicts=100)
    # A larger requested budget must re-solve rather than replay the timeout.
    assert cache.lookup("k", timeout=5.0, max_conflicts=100) is None
    assert cache.lookup("k", timeout=1.0, max_conflicts=1000) is None
    # An equal-or-smaller budget can reuse it.
    assert cache.lookup("k", timeout=1.0, max_conflicts=100) == VERDICT_UNKNOWN
    assert cache.lookup("k", timeout=0.5, max_conflicts=50) == VERDICT_UNKNOWN
    # Definitive verdicts ignore the budget entirely.
    cache.store("k2", VERDICT_SAT, timeout=0.001, max_conflicts=1)
    assert cache.lookup("k2", timeout=60.0, max_conflicts=None) == VERDICT_SAT


def test_cache_never_downgrades_definitive_verdicts():
    cache = SolverQueryCache()
    cache.store("k", VERDICT_UNSAT, timeout=5.0)
    cache.store("k", VERDICT_UNKNOWN, timeout=60.0)
    assert cache.lookup("k") == VERDICT_UNSAT


def test_cache_lru_eviction():
    cache = SolverQueryCache(capacity=2)
    cache.store("a", VERDICT_SAT)
    cache.store("b", VERDICT_SAT)
    assert cache.lookup("a") == VERDICT_SAT     # refresh "a"
    cache.store("c", VERDICT_SAT)               # evicts "b"
    assert cache.lookup("b") is None
    assert cache.lookup("a") == VERDICT_SAT
    assert cache.lookup("c") == VERDICT_SAT


def test_cache_disk_round_trip(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    cache = SolverQueryCache(path=path)
    cache.store("k1", VERDICT_UNSAT, timeout=5.0, max_conflicts=100, elapsed=0.25)
    cache.store("k2", VERDICT_UNKNOWN, timeout=1.0, max_conflicts=10)
    assert cache.flush() == 2
    assert cache.flush() == 0                   # nothing new since last flush

    lines = [json.loads(line) for line in open(path, encoding="utf-8")]
    assert {line["key"] for line in lines} == {"k1", "k2"}

    reloaded = SolverQueryCache(path=path)
    assert len(reloaded) == 2
    assert reloaded.lookup("k1") == VERDICT_UNSAT
    assert reloaded.lookup("k2", timeout=1.0, max_conflicts=10) == VERDICT_UNKNOWN
    # Entries loaded from disk are not "new" and must not be re-flushed.
    assert reloaded.flush() == 0


def test_cache_load_tolerates_torn_lines(tmp_path):
    path = tmp_path / "cache.jsonl"
    good = json.dumps({"key": "k", "verdict": "unsat",
                       "timeout": 5.0, "max_conflicts": 10, "elapsed": 0.0})
    path.write_text(good + "\n" + '{"key": "torn", "verd' + "\n")
    cache = SolverQueryCache(path=str(path))
    assert len(cache) == 1
    assert cache.lookup("k") == VERDICT_UNSAT


def test_cache_flush_merges_other_writers_entries(tmp_path):
    # Two caches sharing one path: flushing must merge, never clobber.
    path = str(tmp_path / "cache.jsonl")
    first = SolverQueryCache(path=path)
    second = SolverQueryCache(path=path)
    first.store("ka", VERDICT_UNSAT)
    second.store("kb", VERDICT_SAT)
    assert first.flush() == 1
    assert second.flush() == 1                  # does not lose "ka"
    reloaded = SolverQueryCache(path=path)
    assert len(reloaded) == 2
    assert reloaded.lookup("ka") == VERDICT_UNSAT
    assert reloaded.lookup("kb") == VERDICT_SAT


def test_cache_flush_never_downgrades_on_disk(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    first = SolverQueryCache(path=path)
    first.store("k", VERDICT_UNSAT, timeout=5.0)
    assert first.flush() == 1
    late = SolverQueryCache()
    late.store("k", VERDICT_UNKNOWN, timeout=60.0)
    assert late.flush(path) == 0                # unknown never wins on disk
    assert SolverQueryCache(path=path).lookup("k") == VERDICT_UNSAT


def test_cache_flush_is_safe_under_concurrent_processes(tmp_path):
    """The satellite regression: several processes repeatedly flushing one
    cache file must lose no entries and never leave a torn file (advisory
    lock + atomic temp-file rename)."""
    import subprocess
    import sys
    import textwrap

    import repro

    path = str(tmp_path / "shared-cache.jsonl")
    writers, rounds, per_round = 4, 5, 10
    script = textwrap.dedent("""
        import sys
        from repro.engine.cache import SolverQueryCache

        path, writer = sys.argv[1], int(sys.argv[2])
        for round_index in range(int(sys.argv[3])):
            cache = SolverQueryCache(path=path)
            for i in range(int(sys.argv[4])):
                cache.store(f"w{writer}-r{round_index}-{i}", "unsat")
            cache.flush()
    """)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    processes = [subprocess.Popen(
        [sys.executable, "-c", script, path, str(writer), str(rounds),
         str(per_round)], env=env) for writer in range(writers)]
    for process in processes:
        assert process.wait(timeout=120) == 0
    lines = [json.loads(line)
             for line in open(path, encoding="utf-8")]  # every line parses
    keys = [line["key"] for line in lines]
    assert len(keys) == len(set(keys)) == writers * rounds * per_round


# -- checker integration --------------------------------------------------------------


def test_query_cache_replays_across_identical_functions():
    source = snippet_by_name("fig1_pointer_overflow_check")
    cache = SolverQueryCache()
    first = check_source(source.render("one"), cache=cache)
    second = check_source(source.render("two"), cache=cache)
    # Alpha-renaming makes the two instances' queries structurally identical.
    assert first.queries == second.queries
    assert first.solver_queries > 0
    assert second.solver_queries == 0
    assert second.cache_hits == second.queries
    assert len(second.bugs) == len(first.bugs) > 0


def test_uncached_checker_has_zero_cache_hits():
    report = check_source(snippet_by_name("stable_division_guard").render("x"))
    assert report.cache_hits == 0
    assert report.solver_queries == report.queries


# -- corpus runs: equivalence and warm cache -----------------------------------------


def test_cold_run_shape(cold_run):
    units = corpus_units()
    assert cold_run.stats.units == len(units)
    assert cold_run.stats.failed_units == 0
    assert cold_run.stats.diagnostics > 0
    assert cold_run.stats.queries > 0
    # Every unstable snippet is flagged and no stable snippet is.
    flagged = {result.name for result in cold_run.results if result.report.bugs}
    assert flagged == {s.name for s in SNIPPETS}


def test_parallel_matches_sequential(cold_run, parallel_run):
    assert diagnostics_signature(parallel_run) == diagnostics_signature(cold_run)
    assert parallel_run.stats.units == cold_run.stats.units
    assert parallel_run.stats.diagnostics == cold_run.stats.diagnostics


def test_warm_cache_issues_strictly_fewer_solver_queries(cold_run, warm_run):
    # Same questions asked...
    assert warm_run.stats.queries == cold_run.stats.queries
    # ...but the warm run replays verdicts instead of re-solving.
    assert warm_run.stats.solver_queries < cold_run.stats.solver_queries
    assert warm_run.stats.cache_hits > cold_run.stats.cache_hits
    # And the reports are byte-for-byte the same diagnostics.
    assert diagnostics_signature(warm_run) == diagnostics_signature(cold_run)


def test_check_modules_parallel_equivalence():
    from repro.api import check_modules_parallel, compile_source

    sources = [s.render("mods") for s in SNIPPETS[:4]]
    sequential = [check_source(src) for src in sources]
    modules = [compile_source(src) for src in sources]
    parallel = check_modules_parallel(modules, workers=2)
    assert [len(r.bugs) for r in parallel.reports] == \
        [len(r.bugs) for r in sequential]


# -- timeout escalation ---------------------------------------------------------------

#: A budget of one CDCL conflict starves every non-trivial query.
STARVED = CheckerConfig(max_conflicts=1)


def test_starved_budget_times_out_without_escalation():
    engine = CheckEngine(EngineConfig(workers=0, checker=STARVED,
                                      escalation_factors=()))
    result = engine.check_corpus(
        [("fig1", snippet_by_name("fig1_pointer_overflow_check").render("t"))])
    assert result.stats.timeouts > 0
    assert result.stats.escalated_units == 0
    assert result.stats.diagnostics == 0       # conservatively reports nothing


def test_escalation_recovers_starved_functions():
    engine = CheckEngine(EngineConfig(workers=0, checker=STARVED,
                                      escalation_factors=(50_000.0,)))
    result = engine.check_corpus(
        [("fig1", snippet_by_name("fig1_pointer_overflow_check").render("t"))])
    assert result.stats.escalated_units == 1
    assert result.results[0].attempts == 2
    assert result.stats.timeouts == 0
    baseline = check_source(snippet_by_name("fig1_pointer_overflow_check").render("t"))
    assert len(result.bugs) == len(baseline.bugs) > 0


def test_escalate_config_scales_budget():
    config = CheckerConfig(solver_timeout=2.0, max_conflicts=100)
    scaled = escalate_config(config, 4.0)
    assert scaled.solver_timeout == 8.0
    assert scaled.max_conflicts == 400
    assert config.solver_timeout == 2.0         # original untouched
    unlimited = escalate_config(CheckerConfig(solver_timeout=None,
                                              max_conflicts=None), 4.0)
    assert unlimited.solver_timeout is None
    assert unlimited.max_conflicts is None


# -- work units and error handling ----------------------------------------------------


def test_work_unit_requires_exactly_one_payload():
    with pytest.raises(ValueError):
        WorkUnit(name="bad")
    with pytest.raises(ValueError):
        from repro.api import compile_source
        WorkUnit(name="bad", source="int f() { return 0; }",
                 module=compile_source("int g() { return 0; }"))


def test_frontend_rejection_is_reported_not_fatal():
    result = check_corpus([("broken", "int f( {"),
                           ("fine", "int g(int x) { return x; }")], workers=0)
    assert result.stats.units == 2
    assert result.stats.failed_units == 1
    broken = result.results[0]
    assert not broken.ok and broken.error
    assert result.results[1].ok


def test_check_work_unit_standalone():
    unit = WorkUnit(name="u", source=snippet_by_name("fig2_null_check_after_deref").render("t"))
    result = check_work_unit(unit, CheckerConfig(), cache=SolverQueryCache())
    assert result.ok
    assert result.attempts == 1
    assert len(result.report.bugs) > 0
    assert result.cache_entries                 # worker-side drain happened


# -- JSONL result sink ----------------------------------------------------------------


def test_results_jsonl_schema(cold_run):
    lines = [json.loads(line)
             for line in open(cold_run._results_path, encoding="utf-8")]
    units = [line for line in lines if line["type"] == "unit"]
    runs = [line for line in lines if line["type"] == "run"]
    assert len(units) == cold_run.stats.units
    assert len(runs) == 1
    total = sum(len(line["diagnostics"]) for line in units)
    assert total == cold_run.stats.diagnostics
    summary = runs[0]
    assert summary["queries"] == cold_run.stats.queries
    assert summary["solver_queries"] == cold_run.stats.solver_queries
    assert "cache" in summary
    for line in units:
        for diagnostic in line["diagnostics"]:
            # ub_kinds may be empty (no single UB condition isolated), but
            # the field and a concrete algorithm must always be present.
            assert "ub_kinds" in diagnostic
            assert diagnostic["algorithm"]


# -- CheckerConfig.describe -----------------------------------------------------------


def test_checker_config_describe():
    text = CheckerConfig(solver_timeout=2.5, inline=False).describe()
    assert "solver_timeout = 2.5" in text
    assert "inline = False" in text
    assert "encoder.partial_division_axioms = True" in text
    # Every top-level field is present.
    for name in ("max_conflicts", "minimize_ub_sets", "enable_elimination",
                 "enable_boolean_oracle", "enable_algebra_oracle", "classify",
                 "ignore_compiler_generated"):
        assert name in text


def test_checker_config_encoder_options_not_shared():
    first = CheckerConfig()
    second = CheckerConfig()
    assert first.encoder_options is not second.encoder_options


# -- WorkUnit metadata and RunStats.merge ---------------------------------------------


def test_unit_meta_travels_to_results_and_sink(tmp_path):
    path = tmp_path / "results.jsonl"
    units = [
        WorkUnit(name="tagged", source="int f(int x) { return x; }",
                 meta={"scenario": "demo", "expected_unstable": False}),
        WorkUnit(name="plain", source="int g(int x) { return x; }"),
    ]
    engine = CheckEngine(EngineConfig(workers=0, results_path=str(path)))
    result = engine.check_corpus(units)
    assert result.results[0].meta == {"scenario": "demo",
                                      "expected_unstable": False}
    assert result.results[1].meta == {}
    records = [json.loads(line) for line
               in path.read_text(encoding="utf-8").splitlines()]
    assert records[0]["meta"]["scenario"] == "demo"
    assert records[1]["meta"] == {}


def test_unit_meta_survives_worker_processes():
    units = [WorkUnit(name=f"u{i}", source=f"int f{i}(int x) {{ return x; }}",
                      meta={"index": i}) for i in range(4)]
    engine = CheckEngine(EngineConfig(workers=2))
    result = engine.check_corpus(units)
    assert [r.meta["index"] for r in result.results] == [0, 1, 2, 3]


def test_unit_meta_survives_compile_failure():
    result = check_work_unit(WorkUnit(name="broken", source="int f( {",
                                      meta={"scenario": "x"}),
                             CheckerConfig())
    assert result.error is not None
    assert result.meta == {"scenario": "x"}


def test_run_stats_merge_accumulates_counters():
    from repro.engine.engine import RunStats

    first = RunStats(units=3, functions=5, diagnostics=2, queries=10,
                     cache_hits=4, workers=2, wall_clock=1.5, solver_time=0.5)
    second = RunStats(units=2, functions=1, diagnostics=1, queries=6,
                      cache_hits=1, workers=4, wall_clock=0.5,
                      solver_time=0.25)
    first.merge(second)
    assert first.units == 5
    assert first.functions == 6
    assert first.diagnostics == 3
    assert first.queries == 16
    assert first.cache_hits == 5
    assert first.workers == 4                   # max, not sum
    assert first.wall_clock == 2.0
    assert first.solver_time == 0.75


def test_run_stats_merge_matches_single_run():
    from repro.engine.engine import RunStats

    units = corpus_units("merge")
    whole = CheckEngine(EngineConfig(workers=0, cache_enabled=False)) \
        .check_corpus(units)
    merged = RunStats()
    engine = CheckEngine(EngineConfig(workers=0, cache_enabled=False))
    for half in (units[:len(units) // 2], units[len(units) // 2:]):
        merged.merge(engine.check_corpus(half).stats)
    assert merged.units == whole.stats.units
    assert merged.diagnostics == whole.stats.diagnostics
    assert merged.queries == whole.stats.queries
