"""Unit tests for the MiniC frontend: lexer, preprocessor, parser, sema."""

import pytest

from repro.frontend import parse, analyze, Preprocessor
from repro.frontend.ast_nodes import (
    AssignExpr,
    BinaryExpr,
    CallExpr,
    CastExpr,
    DeclStmt,
    ForStmt,
    FunctionDecl,
    Identifier,
    IfStmt,
    IntLiteral,
    MemberExpr,
    ReturnStmt,
    StructDecl,
    UnaryExpr,
    WhileStmt,
)
from repro.frontend.ctypes import CInt, CPointer, CStruct
from repro.frontend.errors import LexError, ParseError, SemaError
from repro.frontend.lexer import Lexer, TokenKind, tokenize
from repro.ir.source import OriginKind


class TestLexer:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo_bar;")
        assert tokens[0].is_keyword("int")
        assert tokens[1].is_ident("foo_bar")
        assert tokens[2].is_punct(";")
        assert tokens[-1].kind is TokenKind.EOF

    def test_integer_literals(self):
        tokens = tokenize("42 0x2a 100UL 7u")
        assert tokens[0].value == 42
        assert tokens[1].value == 0x2A
        assert tokens[2].value == 100 and tokens[2].suffix == "ul"
        assert tokens[3].suffix == "u"

    def test_char_and_string_literals(self):
        tokens = tokenize("'.' \"hello\\n\"")
        assert tokens[0].kind is TokenKind.CHAR_LITERAL
        assert tokens[0].value == ord(".")
        assert tokens[1].kind is TokenKind.STRING_LITERAL
        assert tokens[1].text == "hello\n"

    def test_multichar_punctuators(self):
        tokens = tokenize("a->b <<= c && d++")
        texts = [t.text for t in tokens[:-1]]
        assert "->" in texts and "<<=" in texts and "&&" in texts and "++" in texts

    def test_comments_are_skipped(self):
        tokens = tokenize("int x; // comment\n/* block\ncomment */ int y;")
        idents = [t.text for t in tokens if t.kind is TokenKind.IDENT]
        assert idents == ["x", "y"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("int a;\nint b;")
        b_token = [t for t in tokens if t.is_ident("b")][0]
        assert b_token.location.line == 2

    def test_bad_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int $x;")

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")


class TestPreprocessor:
    def test_object_macro_expansion(self):
        pp = Preprocessor()
        tokens = pp.preprocess("#define LIMIT 100\nint x = LIMIT;")
        values = [t.value for t in tokens if t.kind is TokenKind.INT_LITERAL]
        assert values == [100]

    def test_function_macro_expansion(self):
        pp = Preprocessor()
        tokens = pp.preprocess("#define SQUARE(x) ((x) * (x))\nint y = SQUARE(5);")
        assert sum(1 for t in tokens if t.kind is TokenKind.INT_LITERAL) == 2

    def test_macro_tokens_carry_macro_origin(self):
        pp = Preprocessor()
        tokens = pp.preprocess("#define IS_NULL(p) (p == 0)\nint z = IS_NULL(q);")
        macro_tokens = [t for t in tokens if t.origin.kind is OriginKind.MACRO]
        assert macro_tokens
        assert all(t.origin.detail == "IS_NULL" for t in macro_tokens)

    def test_undef_removes_macro(self):
        pp = Preprocessor()
        tokens = pp.preprocess("#define A 1\n#undef A\nint x = A;")
        assert any(t.is_ident("A") for t in tokens)

    def test_include_lines_are_ignored(self):
        pp = Preprocessor()
        tokens = pp.preprocess('#include <stdio.h>\nint x;')
        assert any(t.is_ident("x") for t in tokens)

    def test_nested_macro_expansion(self):
        pp = Preprocessor()
        tokens = pp.preprocess("#define A B\n#define B 7\nint x = A;")
        assert any(t.kind is TokenKind.INT_LITERAL and t.value == 7 for t in tokens)


class TestParser:
    def test_simple_function(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.function("add")
        assert func is not None
        assert len(func.params) == 2
        assert isinstance(func.body.statements[0], ReturnStmt)

    def test_pointer_and_array_declarations(self):
        unit = parse("int f(void) { char *p; int a[10]; return 0; }")
        body = unit.function("f").body.statements
        assert isinstance(body[0], DeclStmt) and isinstance(body[0].decl_type, CPointer)
        assert body[1].decl_type.is_array() and body[1].decl_type.count == 10

    def test_struct_declaration_and_member_access(self):
        unit = parse("""
            struct sock { int fd; };
            struct tun_struct { struct sock *sk; int flags; };
            int f(struct tun_struct *tun) { return tun->flags; }
        """)
        func = unit.function("f")
        ret = func.body.statements[0]
        assert isinstance(ret.value, MemberExpr)
        assert ret.value.arrow is True

    def test_control_flow_statements(self):
        unit = parse("""
            int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i = i + 1) total += i;
                while (total > 100) total -= 10;
                if (total < 0) return -1; else return total;
            }
        """)
        body = unit.function("f").body.statements
        assert isinstance(body[1], ForStmt)
        assert isinstance(body[2], WhileStmt)
        assert isinstance(body[3], IfStmt)

    def test_expression_precedence(self):
        unit = parse("int f(int a, int b) { return a + b * 2; }")
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value, BinaryExpr)
        assert ret.value.op == "+"
        assert isinstance(ret.value.rhs, BinaryExpr) and ret.value.rhs.op == "*"

    def test_ternary_and_logical_operators(self):
        unit = parse("int f(int a) { return a > 0 && a < 10 ? 1 : 0; }")
        assert unit.function("f") is not None

    def test_cast_expression(self):
        unit = parse("long f(int a) { return (long)a; }")
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value, CastExpr)

    def test_typedef_types_usable(self):
        unit = parse("int64_t f(int64_t x) { return x; }")
        func = unit.function("f")
        assert isinstance(func.return_type, CInt)
        assert func.return_type.width == 64

    def test_call_with_arguments(self):
        unit = parse("int f(int a) { return abs(a); }")
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value, CallExpr) and ret.value.callee == "abs"

    def test_prototype_without_body(self):
        unit = parse("int g(int); int f(int a) { return g(a); }")
        assert unit.function("g") is None
        assert unit.function("f") is not None

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError):
            parse("int f( { }")

    def test_global_variable(self):
        unit = parse("int counter = 3; int f(void) { return counter; }")
        assert len(unit.declarations) == 2


class TestSema:
    def test_expression_types_assigned(self):
        unit = analyze(parse("int f(int a, int b) { return a + b; }"))
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value.ctype, CInt)
        assert ret.value.ctype.width == 32

    def test_usual_arithmetic_conversion_to_unsigned(self):
        unit = analyze(parse("unsigned int f(unsigned int a, int b) { return a + b; }"))
        ret = unit.function("f").body.statements[0]
        assert ret.value.ctype.signed is False

    def test_implicit_cast_inserted_for_narrowing(self):
        unit = analyze(parse("int f(long x) { int y = x; return y; }"))
        decl = unit.function("f").body.statements[0]
        assert isinstance(decl.initializer, CastExpr)
        assert decl.initializer.implicit

    def test_pointer_arithmetic_type(self):
        unit = analyze(parse("char *f(char *p, int n) { return p + n; }"))
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value.ctype, CPointer)

    def test_member_offsets_computed(self):
        unit = analyze(parse("""
            struct pair { int first; int second; };
            int f(struct pair *p) { return p->second; }
        """))
        ret = unit.function("f").body.statements[0]
        assert ret.value.field_offset == 4

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int f(void) { return missing; }"))

    def test_unknown_member_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("""
                struct s { int a; };
                int f(struct s *p) { return p->b; }
            """))

    def test_known_library_function_types(self):
        unit = analyze(parse("char *f(char *s) { return strchr(s, '.'); }"))
        ret = unit.function("f").body.statements[0]
        assert isinstance(ret.value.ctype, CPointer)

    def test_dereference_of_non_pointer_rejected(self):
        with pytest.raises(SemaError):
            analyze(parse("int f(int a) { return *a; }"))

    def test_comparison_yields_int(self):
        unit = analyze(parse("int f(int a) { return a < 3; }"))
        ret = unit.function("f").body.statements[0]
        assert ret.value.ctype.width == 32
