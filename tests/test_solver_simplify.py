"""Tests for the structural simplifier's algebraic rewrites.

The same-operand identities (``x ^ x -> 0``, ``x & x -> x``, ``x | x -> x``,
``x - x -> 0``) must be applied by :func:`repro.solver.simplify.simplify`
and must preserve solver verdicts — asserted both by evaluation over
concrete assignments and by discharging the equivalence with the solver
itself.
"""

import pytest

from repro.solver.simplify import simplify, term_size
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import Op, TermManager


@pytest.fixture
def mgr():
    return TermManager()


def build_same_operand(mgr, op_name, x):
    builder = {"xor": mgr.bvxor, "and": mgr.bvand,
               "or": mgr.bvor, "sub": mgr.bvsub}[op_name]
    return builder(x, x)


class TestSameOperandRewrites:
    @pytest.mark.parametrize("op_name", ["xor", "sub"])
    def test_annihilators_fold_to_zero(self, mgr, op_name):
        x = mgr.bv_var("x", 32)
        simplified = simplify(mgr, build_same_operand(mgr, op_name, x))
        assert simplified.is_const() and simplified.value == 0

    @pytest.mark.parametrize("op_name", ["and", "or"])
    def test_idempotents_fold_to_operand(self, mgr, op_name):
        x = mgr.bv_var("x", 16)
        assert simplify(mgr, build_same_operand(mgr, op_name, x)) is x

    def test_rewrites_fire_on_nested_terms(self, mgr):
        # (x + y) ^ (x + y) only becomes same-operand after the children are
        # walked; the rewrite must see the rebuilt node.
        x, y = mgr.bv_var("x", 32), mgr.bv_var("y", 32)
        lhs = mgr.bvadd(x, y)
        rhs = mgr.bvadd(x, y)        # hash-consed to the same node
        simplified = simplify(mgr, mgr.bvxor(lhs, rhs))
        assert simplified.is_const() and simplified.value == 0

    def test_boolean_context_collapses(self, mgr):
        # distinct(x ^ x, 0) should fold away without any SAT work.
        x = mgr.bv_var("x", 8)
        zero = mgr.bv_const(0, 8)
        simplified = simplify(mgr, mgr.distinct(mgr.bvxor(x, x), zero))
        assert simplified.is_const() and simplified.value is False

    def test_term_size_shrinks(self, mgr):
        # The same-operand folds collapse the children at construction time;
        # the remaining `x | 0` node is the simplifier's job.
        x = mgr.bv_var("x", 32)
        term = mgr.bvor(mgr.bvand(x, x), mgr.bvsub(x, x))
        assert term.op is Op.BVOR
        simplified = simplify(mgr, term)
        assert simplified is x
        assert term_size(simplified) < term_size(term)

    def test_constant_identities(self, mgr):
        x = mgr.bv_var("x", 8)
        zero, ones = mgr.bv_const(0, 8), mgr.bv_const(0xFF, 8)
        assert simplify(mgr, mgr.bvand(x, zero)).value == 0
        assert simplify(mgr, mgr.bvor(x, zero)) is x
        assert simplify(mgr, mgr.bvxor(x, zero)) is x
        assert simplify(mgr, mgr.bvand(x, ones)) is x
        assert simplify(mgr, mgr.bvor(x, ones)).value == 0xFF
        assert simplify(mgr, mgr.bvxor(x, ones)) is mgr.bvnot(x)
        for value in (0, 1, 0x80, 0xFF):
            assert mgr.evaluate(simplify(mgr, mgr.bvxor(x, ones)),
                                {"x": value}) == value ^ 0xFF

    @pytest.mark.parametrize("op_name", ["xor", "and", "or", "sub"])
    def test_equivalence_by_evaluation(self, mgr, op_name):
        x = mgr.bv_var("x", 8)
        original = build_same_operand(mgr, op_name, x)
        simplified = simplify(mgr, original)
        for value in (0, 1, 0x7F, 0x80, 0xFF, 0x55):
            assert mgr.evaluate(original, {"x": value}) == \
                mgr.evaluate(simplified, {"x": value})

    @pytest.mark.parametrize("op_name", ["xor", "and", "or", "sub"])
    def test_equivalence_by_solver(self, mgr, op_name):
        # The solver itself proves original != simplified is unsatisfiable.
        x = mgr.bv_var("x", 8)
        original = build_same_operand(mgr, op_name, x)
        simplified = simplify(mgr, original)
        solver = Solver(mgr, timeout=None, max_conflicts=100_000)
        solver.add(mgr.distinct(original, simplified))
        assert solver.check() is CheckResult.UNSAT


class TestShiftAndNegationIdentities:
    @pytest.mark.parametrize("shift_name", ["shl", "lshr", "ashr"])
    def test_shift_by_zero_folds_to_operand(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr,
                   "ashr": mgr.bvashr}[shift_name]
        x = mgr.bv_var("x", 32)
        zero = mgr.bv_const(0, 32)
        assert simplify(mgr, builder(x, zero)) is x

    @pytest.mark.parametrize("shift_name", ["shl", "lshr", "ashr"])
    def test_shift_by_nonzero_survives(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr,
                   "ashr": mgr.bvashr}[shift_name]
        x = mgr.bv_var("x", 32)
        one = mgr.bv_const(1, 32)
        shifted = simplify(mgr, builder(x, one))
        assert not shifted.is_const()
        assert shifted is not x

    def test_shift_by_zero_fires_on_rebuilt_children(self, mgr):
        # The zero only appears once y - y collapses during the walk.
        x, y = mgr.bv_var("x", 16), mgr.bv_var("y", 16)
        term = mgr.bvshl(x, mgr.bvsub(y, y))
        assert simplify(mgr, term) is x

    def test_double_bvneg_folds(self, mgr):
        x = mgr.bv_var("x", 8)
        assert simplify(mgr, mgr.bvneg(mgr.bvneg(x))) is x

    def test_boolean_and_bitwise_double_negation_fold_at_construction(self, mgr):
        # not(not b) and ~~x never reach the simplifier: the TermManager
        # constructors collapse them, which this pins down.
        b = mgr.bool_var("b")
        assert mgr.not_(mgr.not_(b)) is b
        x = mgr.bv_var("x", 8)
        assert mgr.bvnot(mgr.bvnot(x)) is x

    @pytest.mark.parametrize("shift_name", ["shl", "lshr", "ashr"])
    def test_shift_identity_equivalence_by_evaluation(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr,
                   "ashr": mgr.bvashr}[shift_name]
        x = mgr.bv_var("x", 8)
        original = builder(x, mgr.bv_const(0, 8))
        simplified = simplify(mgr, original)
        for value in (0, 1, 0x7F, 0x80, 0xFF, 0x55):
            assert mgr.evaluate(original, {"x": value}) == \
                mgr.evaluate(simplified, {"x": value})

    def test_double_neg_equivalence_by_solver(self, mgr):
        # Verdict preservation, PR-3 style: the solver itself discharges
        # original != simplified as unsatisfiable.
        x = mgr.bv_var("x", 8)
        original = mgr.bvneg(mgr.bvneg(x))
        simplified = simplify(mgr, original)
        solver = Solver(mgr, timeout=None, max_conflicts=100_000)
        solver.add(mgr.distinct(original, simplified))
        assert solver.check() is CheckResult.UNSAT

    def test_shift_query_verdicts_unchanged(self, mgr):
        x, y = mgr.bv_var("x", 16), mgr.bv_var("y", 16)
        zero16 = mgr.bv_const(0, 16)

        # UNSAT: (x << 0) != x can never hold.
        unsat = Solver(mgr, timeout=None)
        unsat.add(mgr.distinct(mgr.bvshl(x, zero16), x))
        assert unsat.check() is CheckResult.UNSAT

        # SAT: the rewrite must not touch a genuine shift.
        sat = Solver(mgr, timeout=None)
        sat.add(mgr.distinct(mgr.bvshl(x, y), x))
        assert sat.check() is CheckResult.SAT


class TestShiftChainFolds:
    """PR-5 identities: constant shift chains collapse into one shift."""

    @pytest.mark.parametrize("shift_name", ["shl", "lshr"])
    def test_chain_folds_to_single_shift(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr}[shift_name]
        x = mgr.bv_var("x", 32)
        chained = builder(builder(x, mgr.bv_const(3, 32)), mgr.bv_const(4, 32))
        simplified = simplify(mgr, chained)
        assert simplified.op is chained.op
        assert simplified.args[0] is x
        assert simplified.args[1].is_const() and simplified.args[1].value == 7

    @pytest.mark.parametrize("shift_name", ["shl", "lshr"])
    def test_oversized_chain_folds_to_zero(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr}[shift_name]
        x = mgr.bv_var("x", 8)
        chained = builder(builder(x, mgr.bv_const(5, 8)), mgr.bv_const(4, 8))
        simplified = simplify(mgr, chained)
        assert simplified.is_const() and simplified.value == 0

    def test_ashr_chain_is_left_alone(self, mgr):
        # Arithmetic right shifts clamp at width-1; the additive fold does
        # not apply and the simplifier must not pretend it does.
        x = mgr.bv_var("x", 8)
        chained = mgr.bvashr(mgr.bvashr(x, mgr.bv_const(5, 8)),
                             mgr.bv_const(4, 8))
        simplified = simplify(mgr, chained)
        assert simplified.op is Op.BVASHR

    def test_variable_amount_chain_is_left_alone(self, mgr):
        x, y = mgr.bv_var("x", 32), mgr.bv_var("y", 32)
        chained = mgr.bvshl(mgr.bvshl(x, y), mgr.bv_const(1, 32))
        assert simplify(mgr, chained) is chained

    @pytest.mark.parametrize("shift_name", ["shl", "lshr"])
    @pytest.mark.parametrize("c1,c2", [(1, 2), (3, 4), (5, 4), (7, 7)])
    def test_chain_equivalence_by_evaluation(self, mgr, shift_name, c1, c2):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr}[shift_name]
        x = mgr.bv_var("x", 8)
        original = builder(builder(x, mgr.bv_const(c1, 8)),
                           mgr.bv_const(c2, 8))
        simplified = simplify(mgr, original)
        for value in (0, 1, 0x7F, 0x80, 0xFF, 0x55):
            assert mgr.evaluate(original, {"x": value}) == \
                mgr.evaluate(simplified, {"x": value})

    @pytest.mark.parametrize("shift_name", ["shl", "lshr"])
    def test_chain_equivalence_by_solver(self, mgr, shift_name):
        builder = {"shl": mgr.bvshl, "lshr": mgr.bvlshr}[shift_name]
        x = mgr.bv_var("x", 8)
        original = builder(builder(x, mgr.bv_const(2, 8)), mgr.bv_const(3, 8))
        simplified = simplify(mgr, original)
        solver = Solver(mgr, timeout=None, max_conflicts=100_000)
        solver.add(mgr.distinct(original, simplified))
        assert solver.check() is CheckResult.UNSAT

    def test_chain_query_verdicts_unchanged(self, mgr):
        x = mgr.bv_var("x", 8)

        # UNSAT: ((x << 2) << 3) != (x << 5) can never hold.
        unsat = Solver(mgr, timeout=None)
        unsat.add(mgr.distinct(
            mgr.bvshl(mgr.bvshl(x, mgr.bv_const(2, 8)), mgr.bv_const(3, 8)),
            mgr.bvshl(x, mgr.bv_const(5, 8))))
        assert unsat.check() is CheckResult.UNSAT

        # SAT: a fold must not erase a genuine single shift.
        sat = Solver(mgr, timeout=None)
        sat.add(mgr.distinct(mgr.bvshl(x, mgr.bv_const(5, 8)), x))
        assert sat.check() is CheckResult.SAT


class TestExtractConcatFolds:
    """PR-5 identities: extracts forward through concat / zext / sext."""

    def test_extract_within_low_half(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)
        term = mgr.extract(mgr.concat(hi, lo), 5, 2)
        simplified = simplify(mgr, term)
        assert simplified.op is Op.EXTRACT
        assert simplified.args[0] is lo
        assert simplified.attrs == (5, 2)

    def test_extract_within_high_half(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)
        term = mgr.extract(mgr.concat(hi, lo), 15, 8)
        # The full high half: the inner extract folds away entirely.
        assert simplify(mgr, term) is hi

    def test_straddling_extract_is_left_alone(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)
        term = mgr.extract(mgr.concat(hi, lo), 9, 6)
        assert simplify(mgr, term) is term

    def test_extract_below_extension(self, mgr):
        x = mgr.bv_var("x", 8)
        for extend in (mgr.zext, mgr.sext):
            term = mgr.extract(extend(x, 8), 7, 0)
            assert simplify(mgr, term) is x
            narrow = mgr.extract(extend(x, 8), 3, 1)
            simplified = simplify(mgr, narrow)
            assert simplified.op is Op.EXTRACT and simplified.args[0] is x

    def test_extract_of_zext_extension_bits_is_zero(self, mgr):
        x = mgr.bv_var("x", 8)
        term = mgr.extract(mgr.zext(x, 8), 15, 8)
        simplified = simplify(mgr, term)
        assert simplified.is_const() and simplified.value == 0

    def test_extract_of_sext_extension_bits_is_left_alone(self, mgr):
        # Sign-extension bits depend on x's sign bit; no constant fold.
        x = mgr.bv_var("x", 8)
        term = mgr.extract(mgr.sext(x, 8), 15, 8)
        assert not simplify(mgr, term).is_const()

    def test_concat_fold_equivalence_by_evaluation(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)
        cases = [mgr.extract(mgr.concat(hi, lo), 5, 2),
                 mgr.extract(mgr.concat(hi, lo), 14, 9),
                 mgr.extract(mgr.zext(mgr.bv_var("x", 8), 8), 12, 8)]
        for original in cases:
            simplified = simplify(mgr, original)
            for h in (0, 0xA5, 0xFF):
                for l in (0, 0x3C, 0xFF):
                    assignment = {"h": h, "l": l, "x": l}
                    assert mgr.evaluate(original, assignment) == \
                        mgr.evaluate(simplified, assignment)

    def test_concat_fold_equivalence_by_solver(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)
        original = mgr.extract(mgr.concat(hi, lo), 6, 1)
        simplified = simplify(mgr, original)
        solver = Solver(mgr, timeout=None, max_conflicts=100_000)
        solver.add(mgr.distinct(original, simplified))
        assert solver.check() is CheckResult.UNSAT

    def test_extract_query_verdicts_unchanged(self, mgr):
        hi, lo = mgr.bv_var("h", 8), mgr.bv_var("l", 8)

        # UNSAT: extract(concat(h, l), 7, 0) != l can never hold.
        unsat = Solver(mgr, timeout=None)
        unsat.add(mgr.distinct(mgr.extract(mgr.concat(hi, lo), 7, 0), lo))
        assert unsat.check() is CheckResult.UNSAT

        # SAT: the high half is genuinely independent of the low half.
        sat = Solver(mgr, timeout=None)
        sat.add(mgr.distinct(mgr.extract(mgr.concat(hi, lo), 15, 8), lo))
        assert sat.check() is CheckResult.SAT


class TestVerdictPreservation:
    def test_queries_with_rewritten_subterms_keep_their_verdicts(self, mgr):
        x, y = mgr.bv_var("x", 16), mgr.bv_var("y", 16)
        zero = mgr.bv_const(0, 16)

        # UNSAT: (x ^ x) != 0 can never hold.
        unsat = Solver(mgr, timeout=None)
        unsat.add(mgr.distinct(mgr.bvxor(x, x), zero))
        assert unsat.check() is CheckResult.UNSAT

        # SAT: the rewrite must not over-simplify different operands.
        sat = Solver(mgr, timeout=None)
        sat.add(mgr.distinct(mgr.bvxor(x, y), zero))
        assert sat.check() is CheckResult.SAT
        model = sat.model()
        assert model["x"] ^ model["y"] != 0

    def test_checker_verdicts_unchanged_on_rewrite_heavy_source(self):
        # End to end: a function whose encoding contains x-x / x^x shapes
        # still produces the expected diagnostics.
        from repro.api import check_source

        report = check_source("""
            int redundant(int x) {
                int z = x ^ x;
                int d = x - x;
                if (z != d)
                    return -1;
                if (x + 100 < x)
                    return -2;
                return 0;
            }
        """)
        replacements = {bug.replacement for bug in report.bugs}
        # The unstable overflow check is found; the z != d comparison is
        # trivially false already (no UB needed), so it is not reported.
        assert any("false" in replacement for replacement in replacements)
        locations = {bug.location.line for bug in report.bugs}
        assert 5 not in locations
