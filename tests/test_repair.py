"""Tests for the stage-6 auto-repair subsystem (repro.repair)."""

import json

import pytest

from repro.api import check_source, compile_source
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature
from repro.exec.clone import clone_function
from repro.ir.instructions import BinaryOp, BinOpKind, ICmp
from repro.ir.values import Constant
from repro.repair import (
    GATES,
    RepairStatus,
    prove_equivalence,
    recheck_stability,
    unified_patch,
)
from repro.repair.rewrite import clone_with_map, remove_dead_code

SIGNED = """
int alloc_guard(int len) {
    if (len + 100 < len)
        return -1;
    return len + 100;
}
"""

NULL_AFTER_DEREF = """
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int tun_chr_poll(struct tun_struct *tun) {
    struct sock *sk = tun->sk;
    if (!tun)
        return 1;
    return 0;
}
"""

POINTER = """
int write_check(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
"""

SHIFT = """
int ext4_fill_super(int groups_per_flex) {
    if (!(1 << groups_per_flex))
        return -22;
    return 1 << groups_per_flex;
}
"""

DIVISION = """
int average(int total, int count) {
    int mean = total / count;
    if (count == 0)
        return 0;
    return mean;
}
"""

STABLE = """
int safe_div(int a, int b) {
    if (b == 0) return 0;
    return a / b;
}
"""


def repair_config(**overrides):
    return CheckerConfig(repair=True, **overrides)


@pytest.fixture(scope="module")
def signed_repair_report():
    """One shared repair run over SIGNED (the widen proof is the slow part)."""
    return check_source(SIGNED, config=repair_config())


def check_repaired(source, template=None):
    report = check_source(source, config=repair_config())
    assert report.bugs
    for bug in report.bugs:
        assert bug.repair is not None
        assert bug.repair.status is RepairStatus.REPAIRED, bug.repair.reason
        assert bug.repair.all_gates_passed
        if template is not None:
            assert bug.repair.template == template
    return report


class TestTemplatesEndToEnd:
    def test_widen_signed_arithmetic(self, signed_repair_report):
        report = signed_repair_report
        for bug in report.bugs:
            assert bug.repair.status is RepairStatus.REPAIRED
            assert bug.repair.all_gates_passed
            assert bug.repair.template == "widen-signed-arithmetic"
        patch = report.bugs[0].repair.patch
        assert "sext i32 %len to i33" in patch
        assert patch.startswith("--- a/alloc_guard.ll")
        # The unstable narrow comparison is gone from the patched side.
        assert "-  %t4 = icmp slt i32 %t2, i32 %len" in patch

    def test_reorder_null_check_above_dereference(self):
        report = check_repaired(NULL_AFTER_DEREF, template="reorder-guard")
        patch = report.bugs[0].repair.patch
        # The dereference chain leaves the entry block — its value is never
        # used, so after sinking below the guard the cleanup drops it
        # entirely and the null check stops being dominated by it.
        assert patch.count("-  %t4 = load") == 1
        assert "+  %t4 = load" not in patch

    def test_reorder_keeps_a_used_dereference(self):
        # When the guarded value *is* used, the chain must survive the
        # move: it reappears below the guard instead of being deleted.
        report = check_repaired(DIVISION, template="reorder-guard")
        patch = report.bugs[0].repair.patch
        assert patch.count("-  %t3 = sdiv") == 1
        assert patch.count("+  %t3 = sdiv") == 1

    def test_pointer_bound_check(self):
        report = check_repaired(POINTER, template="pointer-bound-check")
        patch = report.bugs[0].repair.patch
        assert "ptrtoint" in patch
        # Both pointer-sum comparisons are rewritten, so no gep survives.
        assert "+  %t4 = gep" not in patch

    def test_guard_oversized_shift(self):
        report = check_repaired(SHIFT, template="guard-oversized-shift")
        patch = report.bugs[0].repair.patch
        assert "icmp uge i32 %groups_per_flex, i32 32" in patch

    def test_reorder_division_below_guard(self):
        check_repaired(DIVISION, template="reorder-guard")

    def test_no_template_for_division_overflow_idiom(self):
        report = check_source("""
            int64_t int8div(int64_t arg1, int64_t arg2) {
                if (arg2 == 0)
                    return 0;
                int64_t result = arg1 / arg2;
                if (arg2 == -1 && arg1 < 0 && result <= 0)
                    return 0;
                return result;
            }
        """, config=repair_config())
        assert report.bugs
        for bug in report.bugs:
            assert bug.repair.status is RepairStatus.NO_TEMPLATE
            assert not bug.repair.patch

    def test_stable_code_attempts_nothing(self):
        report = check_source(STABLE, config=repair_config())
        assert not report.bugs
        assert report.repairs_attempted == 0


class TestReportsAndCounters:
    def test_function_report_counters(self, signed_repair_report):
        report = signed_repair_report
        assert report.repairs_attempted == len(report.bugs) == 2
        assert report.repairs_succeeded == 2
        assert report.repairs_rejected == 0
        assert report.repairs_no_template == 0
        assert report.repair_time > 0

    def test_describe_mentions_repair(self, signed_repair_report):
        text = signed_repair_report.describe()
        assert "auto-repair: 2 of 2 diagnostics repaired" in text
        assert "widen-signed-arithmetic" in text

    def test_diagnostics_unchanged_by_repair(self, signed_repair_report):
        # Stage 6 annotates; it must never change what is reported.
        plain = check_source(SIGNED, config=CheckerConfig())
        assert report_signature(plain) == \
            report_signature(signed_repair_report)

    def test_sink_record_carries_repair(self, signed_repair_report):
        from repro.engine.sink import report_to_dict

        record = report_to_dict("unit0", signed_repair_report)
        assert record["repairs_attempted"] == 2
        assert record["repairs_succeeded"] == 2
        function_repair = record["functions"][0]["repair"]
        assert function_repair["repaired"] == 2
        assert set(function_repair["gate_rejections"]) == \
            {"equivalence", "recheck", "replay"}
        diagnostic = record["diagnostics"][0]["repair"]
        assert diagnostic["status"] == "repaired"
        assert diagnostic["patch"].startswith("--- a/")
        assert [g["gate"] for g in diagnostic["gates"]] == \
            ["solver-equivalence", "stability-recheck", "witness-replay"]
        json.dumps(record)       # the record stays plain-JSON serialisable

    def test_engine_runstats_aggregate_repairs(self):
        from repro.engine.engine import CheckEngine, EngineConfig

        engine = CheckEngine(EngineConfig(workers=0, checker=repair_config()))
        result = engine.check_corpus([("u0", DIVISION), ("u1", STABLE)])
        stats = result.stats.as_dict()
        assert stats["repair"]["attempted"] == 2
        assert stats["repair"]["repaired"] == 2
        assert stats["repair"]["no_template"] == 0

    def test_parallel_engine_pickles_repair_reports(self):
        from repro.engine.engine import CheckEngine, EngineConfig

        engine = CheckEngine(EngineConfig(workers=2, checker=repair_config()))
        result = engine.check_corpus([("u0", NULL_AFTER_DEREF),
                                      ("u1", DIVISION)])
        assert result.stats.repairs_succeeded == \
            result.stats.repairs_attempted > 0
        for bug in result.bugs:
            assert bug.repair is not None
            assert bug.repair.status is RepairStatus.REPAIRED


class TestVerifierGates:
    def _function(self, source):
        return compile_source(source).defined_functions()[0]

    def test_equivalence_rejects_a_wrong_constant(self):
        function = self._function(SIGNED)
        broken = clone_function(function)
        # Sabotage: change the fall-through `len + 100` into `len + 101`.
        for inst in broken.instructions():
            if isinstance(inst, BinaryOp) and inst.kind is BinOpKind.ADD:
                inst.operands[1] = Constant(inst.type, 101)
        gate = prove_equivalence(function, broken, timeout=None,
                                 max_conflicts=None)
        assert not gate.passed
        assert "differs" in gate.reason

    def test_equivalence_accepts_the_identity_patch(self):
        function = self._function(SIGNED)
        gate = prove_equivalence(function, clone_function(function),
                                 timeout=None, max_conflicts=None)
        assert gate.passed

    def test_equivalence_ignores_ub_input_behaviour(self, signed_repair_report):
        # Replacing the unstable comparison's narrow add with exact wide
        # arithmetic changes behaviour *only* on overflowing inputs; the
        # gate must accept it because those inputs are excluded by the
        # well-defined assumption of the original.
        repair = signed_repair_report.bugs[0].repair
        assert repair.status is RepairStatus.REPAIRED
        assert repair.gates[0].gate == "solver-equivalence"
        assert repair.gates[0].passed

    def test_recheck_rejects_the_original_function(self):
        # The unpatched unstable function itself must fail the re-check
        # gate: it is still flagged.
        function = self._function(SIGNED)
        gate = recheck_stability(clone_function(function), CheckerConfig())
        assert not gate.passed
        assert "flagged" in gate.reason

    def test_unified_patch_shape(self):
        function = self._function(STABLE)
        clone = clone_function(function)
        clone.blocks[0].instructions[0].operands[1] = \
            Constant(clone.arguments[0].type, 7)
        patch = unified_patch(function, clone)
        assert patch.startswith("--- a/safe_div.ll")
        assert "+++ b/safe_div.ll" in patch
        assert any(line.startswith("+") for line in patch.splitlines()[2:])

    def test_gate_order_is_stable(self):
        assert GATES == ("equivalence", "recheck", "replay")


class TestRewriteHelpers:
    def test_clone_with_map_is_positional(self):
        function = compile_source(POINTER).defined_functions()[0]
        clone, inst_map, block_map = clone_with_map(function)
        for old_block, new_block in zip(function.blocks, clone.blocks):
            assert block_map[id(old_block)] is new_block
            for old_inst, new_inst in zip(old_block.instructions,
                                          new_block.instructions):
                assert inst_map[id(old_inst)] is new_inst
                assert old_inst.name == new_inst.name

    def test_remove_dead_code_drops_unused_pure_chain(self):
        function = compile_source(SIGNED).defined_functions()[0]
        clone = clone_function(function)
        # Orphan the comparison: nothing uses it once the branch condition
        # is replaced by a constant.
        from repro.ir.types import IntType

        for block in clone.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, ICmp):
                    for user in clone.instructions():
                        user.replace_operand(
                            inst, Constant(IntType(1, signed=False), 0))
        removed = remove_dead_code(clone)
        assert removed >= 1
        assert not any(isinstance(i, ICmp) for i in clone.instructions())


class TestSeedPlumbing:
    def test_witness_seed_flows_into_replay(self):
        config = CheckerConfig(validate_witnesses=True, witness_seed=7)
        report = check_source(SIGNED, config=config)
        assert report.witnesses_confirmed == len(report.bugs) > 0

    def test_seeded_runs_are_reproducible(self):
        results = [check_source(DIVISION, config=CheckerConfig(
            validate_witnesses=True, repair=True, witness_seed=3))
            for _ in range(2)]
        first, second = results
        assert report_signature(first) == report_signature(second)
        assert [b.repair.patch for b in first.bugs] == \
            [b.repair.patch for b in second.bugs]
