"""Tests for AST→IR lowering, mem2reg promotion, and inlining."""

import pytest

from repro.frontend import analyze, parse
from repro.ir.function import Module
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    BinOpKind,
    Call,
    CondBranch,
    GetElementPtr,
    ICmp,
    ICmpPred,
    Load,
    Phi,
    Return,
    Store,
)
from repro.ir.printer import print_function
from repro.ir.source import OriginKind
from repro.ir.verifier import verify_module
from repro.lower import inline_module, lower_translation_unit
from repro.lower.lowering import ctype_to_irtype
from repro.frontend.ctypes import CPointer, INT, LONG


def lower(source: str, promote: bool = True) -> Module:
    unit = analyze(parse(source))
    module = lower_translation_unit(unit, promote=promote)
    problems = verify_module(module, raise_on_error=False)
    assert not problems, f"IR verification failed: {problems}"
    return module


def instructions_of(module: Module, name: str):
    return list(module.get_function(name).instructions())


class TestBasicLowering:
    def test_simple_arithmetic_function(self):
        module = lower("int add(int a, int b) { return a + b; }")
        insts = instructions_of(module, "add")
        assert any(isinstance(i, BinaryOp) and i.kind is BinOpKind.ADD for i in insts)
        assert any(isinstance(i, Return) for i in insts)

    def test_mem2reg_removes_scalar_allocas(self):
        module = lower("int f(int a) { int b = a + 1; return b * 2; }")
        insts = instructions_of(module, "f")
        assert not any(isinstance(i, Alloca) for i in insts)
        assert not any(isinstance(i, Load) for i in insts)

    def test_without_promotion_allocas_remain(self):
        module = lower("int f(int a) { int b = a + 1; return b; }", promote=False)
        insts = instructions_of(module, "f")
        assert any(isinstance(i, Alloca) for i in insts)
        assert any(isinstance(i, Store) for i in insts)

    def test_if_statement_creates_diamond(self):
        module = lower("int f(int a) { if (a > 0) return 1; return 0; }")
        func = module.get_function("f")
        assert len(func.blocks) >= 3
        assert any(isinstance(i, CondBranch) for i in func.instructions())

    def test_signed_vs_unsigned_comparison_predicates(self):
        module = lower("""
            int f(int a, int b) { return a < b; }
            int g(unsigned int a, unsigned int b) { return a < b; }
        """)
        f_cmps = [i for i in instructions_of(module, "f") if isinstance(i, ICmp)]
        g_cmps = [i for i in instructions_of(module, "g") if isinstance(i, ICmp)]
        assert f_cmps[0].pred is ICmpPred.SLT
        assert g_cmps[0].pred is ICmpPred.ULT

    def test_division_lowered_by_signedness(self):
        module = lower("""
            int f(int a, int b) { return a / b; }
            unsigned int g(unsigned int a, unsigned int b) { return a % b; }
        """)
        assert any(isinstance(i, BinaryOp) and i.kind is BinOpKind.SDIV
                   for i in instructions_of(module, "f"))
        assert any(isinstance(i, BinaryOp) and i.kind is BinOpKind.UREM
                   for i in instructions_of(module, "g"))

    def test_pointer_arithmetic_becomes_gep(self):
        module = lower("char *f(char *p, int n) { return p + n; }")
        geps = [i for i in instructions_of(module, "f") if isinstance(i, GetElementPtr)]
        assert geps
        assert geps[0].element_size == 1

    def test_member_access_is_gep_plus_load(self):
        module = lower("""
            struct sock { int fd; };
            struct tun_struct { struct sock *sk; int flags; };
            int f(struct tun_struct *tun) { return tun->flags; }
        """)
        insts = instructions_of(module, "f")
        geps = [i for i in insts if isinstance(i, GetElementPtr)]
        loads = [i for i in insts if isinstance(i, Load)]
        assert geps and loads
        # flags is at offset 8 (after the 8-byte pointer sk)
        assert any(getattr(g.index, "value", None) == 8 for g in geps)

    def test_array_index_records_capacity(self):
        module = lower("int f(int i) { int a[10]; return a[i]; }")
        geps = [i for i in instructions_of(module, "f") if isinstance(i, GetElementPtr)]
        assert any(g.array_size == 10 for g in geps)

    def test_call_lowered_with_args(self):
        module = lower("int f(int x) { return abs(x); }")
        calls = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
        assert calls and calls[0].callee == "abs"
        assert len(calls[0].args) == 1

    def test_string_literals_get_distinct_nonnull_addresses(self):
        module = lower('int f(void) { return strcmp("a", "b"); }')
        calls = [i for i in instructions_of(module, "f") if isinstance(i, Call)]
        args = calls[0].args
        assert args[0].value != 0 and args[1].value != 0
        assert args[0].value != args[1].value

    def test_loop_produces_phi_after_promotion(self):
        module = lower("""
            int sum(int n) {
                int total = 0;
                for (int i = 0; i < n; i = i + 1)
                    total = total + i;
                return total;
            }
        """)
        insts = instructions_of(module, "sum")
        assert any(isinstance(i, Phi) for i in insts)

    def test_logical_and_short_circuits(self):
        module = lower("int f(int a, int b) { if (a > 0 && b > 0) return 1; return 0; }")
        func = module.get_function("f")
        # Short-circuit lowering introduces extra blocks beyond a plain if.
        assert len(func.blocks) >= 5

    def test_ternary_produces_phi(self):
        module = lower("int f(int a) { return a > 0 ? a : -a; }")
        insts = instructions_of(module, "f")
        assert any(isinstance(i, Phi) for i in insts)

    def test_compound_assignment(self):
        module = lower("int f(int a) { a += 5; return a; }")
        insts = instructions_of(module, "f")
        assert any(isinstance(i, BinaryOp) and i.kind is BinOpKind.ADD for i in insts)

    def test_prepost_increment_semantics(self):
        module = lower("""
            int pre(int a) { return ++a; }
            int post(int a) { int old = a++; return old; }
        """)
        assert module.get_function("pre") is not None
        assert module.get_function("post") is not None

    def test_while_loop_and_break(self):
        module = lower("""
            int f(int n) {
                while (1) {
                    if (n > 10) break;
                    n = n + 1;
                }
                return n;
            }
        """)
        assert module.get_function("f") is not None

    def test_goto_and_label(self):
        module = lower("""
            int f(int n) {
                if (n < 0) goto fail;
                return n;
            fail:
                return -1;
            }
        """)
        func = module.get_function("f")
        assert any(b.name.startswith("label.") for b in func.blocks)

    def test_implicit_widening_inserts_cast(self):
        module = lower("long f(int a) { long b = a; return b; }")
        text = print_function(module.get_function("f"))
        assert "sext" in text

    def test_macro_origin_survives_to_ir(self):
        module = lower("""
            #define IS_NULL(p) ((p) == 0)
            int f(int *p) { if (IS_NULL(p)) return -1; return *p; }
        """)
        insts = instructions_of(module, "f")
        macro_tagged = [i for i in insts if i.origin.kind is OriginKind.MACRO]
        assert macro_tagged
        assert all(i.origin.detail == "IS_NULL" for i in macro_tagged)

    def test_ctype_mapping(self):
        assert ctype_to_irtype(INT).bit_width == 32
        assert ctype_to_irtype(LONG).bit_width == 64
        assert ctype_to_irtype(CPointer(INT)).is_pointer()


class TestFigureExamples:
    """The paper's running examples must lower cleanly."""

    def test_figure1_pointer_overflow_check(self):
        module = lower("""
            int check(char *buf, char *buf_end, unsigned int len) {
                if (buf + len >= buf_end)
                    return -1;
                if (buf + len < buf)
                    return -1;
                return 0;
            }
        """)
        insts = instructions_of(module, "check")
        assert sum(1 for i in insts if isinstance(i, GetElementPtr)) >= 2

    def test_figure2_null_check_after_dereference(self):
        module = lower("""
            struct sock { int fd; };
            struct tun_struct { struct sock *sk; };
            int poll(struct tun_struct *tun) {
                struct sock *sk = tun->sk;
                if (!tun)
                    return 1;
                return 0;
            }
        """)
        func = module.get_function("poll")
        loads = [i for i in func.instructions() if isinstance(i, Load)]
        assert loads  # the tun->sk dereference survives promotion

    def test_figure10_postgres_division(self):
        module = lower("""
            int64_t safe_div(int64_t arg1, int64_t arg2) {
                if (arg2 == 0)
                    return 0;
                int64_t result = arg1 / arg2;
                if (arg2 == -1 && arg1 < 0 && result <= 0)
                    return 0;
                return result;
            }
        """)
        insts = instructions_of(module, "safe_div")
        assert any(isinstance(i, BinaryOp) and i.kind is BinOpKind.SDIV for i in insts)


class TestInlining:
    def test_simple_call_is_inlined(self):
        unit = analyze(parse("""
            static int helper(int x) { return x + 1; }
            int caller(int a) { return helper(a) * 2; }
        """))
        module = lower_translation_unit(unit)
        count = inline_module(module)
        assert count == 1
        caller = module.get_function("caller")
        assert not any(isinstance(i, Call) and i.callee == "helper"
                       for i in caller.instructions())

    def test_inlined_instructions_tagged(self):
        unit = analyze(parse("""
            static int helper(int x) { return x + 1; }
            int caller(int a) { return helper(a); }
        """))
        module = lower_translation_unit(unit)
        inline_module(module)
        caller = module.get_function("caller")
        inlined = [i for i in caller.instructions()
                   if i.origin.kind is OriginKind.INLINE]
        assert inlined
        assert all(i.origin.detail == "helper" for i in inlined)

    def test_recursive_functions_not_inlined(self):
        unit = analyze(parse("""
            int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
            int caller(int a) { return fact(a); }
        """))
        module = lower_translation_unit(unit)
        count = inline_module(module)
        assert count == 0

    def test_external_calls_left_alone(self):
        unit = analyze(parse("int f(int a) { return abs(a); }"))
        module = lower_translation_unit(unit)
        assert inline_module(module) == 0

    def test_inlined_module_still_verifies(self):
        unit = analyze(parse("""
            static int clamp(int x) { if (x > 100) return 100; return x; }
            int caller(int a, int b) { return clamp(a) + clamp(b); }
        """))
        module = lower_translation_unit(unit)
        inline_module(module)
        assert not verify_module(module, raise_on_error=False)
