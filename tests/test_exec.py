"""Tests for the concrete-execution subsystem (repro.exec)."""

import pytest

from repro.api import check_source, compile_source
from repro.compilers.passes import Capability
from repro.compilers.pipeline import OptimizationPipeline
from repro.compilers.profiles import profile_by_name
from repro.core.checker import CheckerConfig
from repro.core.report import diagnostic_signature
from repro.core.ubconditions import UBKind
from repro.engine.sink import diagnostic_to_dict, report_to_dict
from repro.exec import (
    DiffClassification,
    ExecStatus,
    ExternalEnv,
    WitnessVerdict,
    clone_function,
    clone_module,
    run_differential,
    run_function,
)
from repro.ir.printer import print_function


def compile_one(source, name):
    module = compile_source(source)
    function = module.get_function(name)
    assert function is not None
    return module, function


class TestInterpreter:
    def test_arithmetic_and_branching(self):
        _, func = compile_one("""
            int alloc_guard(int len) {
                if (len + 100 < len)
                    return -1;
                return len + 100;
            }
        """, "alloc_guard")
        ok = run_function(func, [5])
        assert ok.returned and ok.signed_value() == 105
        assert not ok.events

        overflow = run_function(func, [2 ** 31 - 3])
        # Unoptimized semantics: the wrapped sum makes the check fire...
        assert overflow.returned and overflow.signed_value() == -1
        # ...and the signed overflow is recorded as a concrete UB event.
        assert [e.kind for e in overflow.events] == [UBKind.SIGNED_OVERFLOW]
        assert overflow.events[0].location.is_known()

    def test_loop_and_fuel(self):
        _, func = compile_one("""
            int sum(int n) {
                int t = 0;
                for (int i = 0; i < n; i = i + 1)
                    t = t + i;
                return t;
            }
        """, "sum")
        assert run_function(func, [10]).signed_value() == 45
        starved = run_function(func, [1000000], fuel=100)
        assert starved.status is ExecStatus.OUT_OF_FUEL

    def test_division_semantics(self):
        _, func = compile_one(
            "int div(int a, int b) { return a / b; }", "div")
        # C truncates toward zero.
        assert run_function(func, [-7, 2]).signed_value() == -3
        by_zero = run_function(func, [5, 0])
        # Division by zero is UB; the C* machine defines the result as 0.
        assert by_zero.returned and by_zero.signed_value() == 0
        assert UBKind.DIV_BY_ZERO in by_zero.ub_kinds

        int_min = -(2 ** 31)
        wrap = run_function(func, [int_min, -1])
        assert UBKind.SIGNED_OVERFLOW in wrap.ub_kinds
        assert wrap.signed_value() == int_min

    def test_oversized_shift(self):
        _, func = compile_one(
            "unsigned int shl(unsigned int x, unsigned int s) { return x << s; }",
            "shl")
        ok = run_function(func, [1, 4])
        assert ok.value == 16 and not ok.events
        oversized = run_function(func, [1, 40])
        assert oversized.value == 0
        assert UBKind.OVERSIZED_SHIFT in oversized.ub_kinds

    def test_memory_roundtrip_and_bounds(self):
        _, func = compile_one("""
            int pick(int idx) {
                int table[4];
                table[0] = 10; table[1] = 11; table[2] = 12; table[3] = 13;
                return table[idx];
            }
        """, "pick")
        assert run_function(func, [2]).signed_value() == 12
        oob = run_function(func, [99])
        assert UBKind.BUFFER_OVERFLOW in oob.ub_kinds

    def test_null_dereference(self):
        _, func = compile_one("""
            struct req { int flags; int status; };
            int touch(struct req *r) {
                r->status = 7;
                return r->flags;
            }
        """, "touch")
        result = run_function(func, [0])
        assert UBKind.NULL_DEREF in result.ub_kinds
        fine = run_function(func, [0x2000])
        assert not fine.events

    def test_use_after_free(self):
        _, func = compile_one("""
            int drop(int *state) {
                free(state);
                int last = *state;
                return last;
            }
        """, "drop")
        result = run_function(func, [0x4000])
        assert UBKind.USE_AFTER_FREE in result.ub_kinds

    def test_defined_callees_interpret_recursively(self):
        module, func = compile_one("""
            int helper(int x) { return x + 1; }
            int outer(int x) { return helper(x) * 2; }
        """, "outer")
        result = run_function(func, [20], module=module)
        assert result.signed_value() == 42

    def test_external_world_is_deterministic(self):
        _, func = compile_one("""
            int peek(int *p) { return *p; }
        """, "peek")
        env_a = ExternalEnv(seed=3, zero_fill=False)
        env_b = ExternalEnv(seed=3, zero_fill=False)
        first = run_function(func, [0x9000], env=env_a)
        second = run_function(func, [0x9000], env=env_b)
        assert first.value == second.value
        different = run_function(func, [0x9000],
                                 env=ExternalEnv(seed=4, zero_fill=False))
        # Not a hard guarantee, but a 64-bit collision would be remarkable.
        assert different.value != first.value

    def test_load_override_by_result_name(self):
        _, func = compile_one("""
            struct tun { long sk; };
            long grab(struct tun *t) { return t->sk; }
        """, "grab")
        load_name = next(i.name for i in func.instructions()
                         if i.opcode() == "load")
        env = ExternalEnv(overrides={load_name: 99})
        assert run_function(func, [0x8000], env=env).signed_value() == 99

    def test_stop_on_ub(self):
        _, func = compile_one(
            "int div(int a, int b) { return a / b; }", "div")
        halted = run_function(func, [1, 0], stop_on_ub=True)
        assert halted.status is ExecStatus.STOPPED_ON_UB
        assert halted.value is None


class TestClone:
    def test_clone_is_identical_and_independent(self):
        module, func = compile_one("""
            int write_check(char *buf, char *buf_end, unsigned int len) {
                if (buf + len >= buf_end) return -1;
                if (buf + len < buf) return -1;
                return 0;
            }
        """, "write_check")
        printed = print_function(func)
        clone = clone_function(func)
        assert print_function(clone) == printed

        # Optimizing the clone must not disturb the original.
        OptimizationPipeline(capabilities=set(Capability)).run_function(clone)
        assert print_function(func) == printed
        assert print_function(clone) != printed

    def test_clone_module(self):
        module = compile_source("""
            int f(int x) { return x + 1; }
            int g(int x) { return f(x) * 2; }
        """)
        copy = clone_module(module)
        assert sorted(copy.functions) == sorted(module.functions)
        assert copy.get_function("f") is not module.get_function("f")
        result = run_function(copy.get_function("g"), [4], module=copy)
        assert result.signed_value() == 10

    def test_clone_executes_identically(self):
        _, func = compile_one("""
            int sum(int n) {
                int t = 0;
                for (int i = 0; i < n; i = i + 1)
                    t = t + i;
                return t;
            }
        """, "sum")
        clone = clone_function(func)
        assert run_function(clone, [9]).signed_value() == \
            run_function(func, [9]).signed_value()


POINTER_CHECK = """
int write_check(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
"""


class TestWitnessValidation:
    def test_diagnostics_gain_confirmed_witnesses(self):
        report = check_source(POINTER_CHECK,
                              config=CheckerConfig(validate_witnesses=True))
        assert report.bugs
        for bug in report.bugs:
            witness = bug.witness
            assert witness is not None
            assert witness.verdict is WitnessVerdict.CONFIRMED
            assert UBKind.POINTER_OVERFLOW in witness.observed_kinds
            assert witness.diverged            # the check really disappears
            assert "buf" in witness.inputs
        assert report.witnesses_confirmed == len(report.bugs)
        assert report.witnesses_unconfirmed == 0
        assert report.witnesses_validated == len(report.bugs)
        assert "witness validation" in report.describe()
        assert "witness confirmed" in report.bugs[0].describe()

    def test_validation_off_by_default(self):
        report = check_source(POINTER_CHECK)
        assert all(bug.witness is None for bug in report.bugs)
        assert report.witnesses_validated == 0

    def test_validation_does_not_change_diagnostics(self):
        plain = check_source(POINTER_CHECK)
        validated = check_source(POINTER_CHECK,
                                 config=CheckerConfig(validate_witnesses=True))
        assert sorted(map(diagnostic_signature, plain.bugs)) == \
            sorted(map(diagnostic_signature, validated.bugs))

    def test_sink_records_carry_witnesses(self):
        report = check_source(POINTER_CHECK,
                              config=CheckerConfig(validate_witnesses=True))
        record = report_to_dict("unit0", report)
        assert record["witnesses_confirmed"] == len(report.bugs)
        assert record["functions"][0]["witnesses"]["confirmed"] == \
            len(report.bugs)
        diagnostic = diagnostic_to_dict(report.bugs[0])
        assert diagnostic["witness"]["verdict"] == "confirmed"
        assert diagnostic["witness"]["diverged"] is True
        import json
        json.dumps(record)      # the whole record must stay JSON-serializable

    def test_stable_code_validates_nothing(self):
        report = check_source("""
            int safe_div(int a, int b) {
                if (b == 0) return 0;
                return a / b;
            }
        """, config=CheckerConfig(validate_witnesses=True))
        assert not report.bugs
        assert report.witnesses_validated == 0

    def test_engine_aggregates_witness_counters(self):
        from repro.api import check_corpus

        result = check_corpus([("unit0", POINTER_CHECK)],
                              config=CheckerConfig(validate_witnesses=True))
        assert result.stats.witnesses_confirmed >= 2
        assert result.stats.as_dict()["witnesses"]["unconfirmed"] == 0


class TestDifferential:
    def make_units(self):
        return [
            ("guard", compile_source("""
                int guard(int x) {
                    if (x + 100 < x) return -1;
                    return 0;
                }
            """)),
            ("safe", compile_source("""
                unsigned int add_sat(unsigned int x) {
                    if (x + 16u < x) return 4294967295u;
                    return x + 16u;
                }
            """)),
        ]

    def test_no_miscompiles_and_ub_justified_divergence(self):
        report = run_differential(
            self.make_units(),
            profiles=[profile_by_name("gcc-4.8.1"),
                      profile_by_name("gcc-2.95.3")],
            inputs_per_function=8, seed=0)
        assert report.miscompiles == []
        assert report.counts[DiffClassification.AGREE.value] > 0
        per = report.by_profile["gcc-4.8.1"]
        # gcc-4.8.1 folds the signed check, so the INT_MAX-ish inputs diverge
        # -- and every such divergence is UB-justified.
        assert per.get(DiffClassification.UB_JUSTIFIED.value, 0) >= 1
        # gcc-2.95.3 has the fold too (signed at -O1), but the *unsigned*
        # wraparound check is defined behavior and must never diverge.
        for case in report.cases:
            assert case.function != "add_sat" or \
                case.classification is not DiffClassification.MISCOMPILE

    def test_runs_are_reproducible(self):
        units = self.make_units()
        first = run_differential(units, profiles=[profile_by_name("gcc-4.8.1")],
                                 inputs_per_function=5, seed=11)
        second = run_differential(self.make_units(),
                                  profiles=[profile_by_name("gcc-4.8.1")],
                                  inputs_per_function=5, seed=11)
        assert first.counts == second.counts
        assert [c.describe() for c in first.cases] == \
            [c.describe() for c in second.cases]

    def test_render_mentions_every_profile(self):
        report = run_differential(self.make_units(),
                                  profiles=[profile_by_name("clang-3.3")],
                                  inputs_per_function=3, seed=2)
        assert "clang-3.3" in report.render()


class TestWitnessExperiment:
    def test_snippet_corpus_confirms_everything(self):
        from repro.experiments.witnesses import run_witness_validation

        result = run_witness_validation()
        assert result.validated >= 20
        assert result.unconfirmed == 0
        assert result.confirmation_rate == 1.0
        assert "TOTAL" in result.render()
