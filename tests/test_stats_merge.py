"""Every stats counter field must survive a merge (ISSUE satellite).

The legacy merge methods used to enumerate fields by hand, so adding a
counter to ``RunStats`` without touching ``merge`` silently dropped it on
parallel runs.  ``merge_counter_dataclass`` now derives the field list from
``dataclasses.fields`` — these tests synthesize distinct values for *every*
field by reflection, merge, and check the combination, so a future counter
that somehow escapes merging fails here by construction.
"""

import dataclasses

import pytest

from repro.core.queries import QueryStats
from repro.engine.engine import RunStats
from repro.obs.metrics import merge_counter_dataclass
from repro.solver.solver import SolverStats

#: (class, fields merged by max instead of addition) — mirrors each
#: ``merge()`` implementation.
CASES = [
    (RunStats, ("workers",)),
    (SolverStats, ()),
    (QueryStats, ()),
]


def synthesize(cls, base):
    """An instance with a distinct, nonzero value in every field."""
    obj = cls()
    for offset, field in enumerate(dataclasses.fields(obj), start=1):
        default = getattr(obj, field.name)
        if isinstance(default, bool):
            setattr(obj, field.name, base % 2 == 1)
        elif isinstance(default, (int, float)):
            setattr(obj, field.name, type(default)(base * 100 + offset))
        elif isinstance(default, dict):
            setattr(obj, field.name,
                    {"shared": base * 100 + offset, f"only{base}": base})
        elif isinstance(default, list):
            setattr(obj, field.name, [base * 100 + offset])
        else:  # pragma: no cover - no such field today
            pytest.fail(f"unmergeable field type: {cls.__name__}.{field.name}")
    return obj


@pytest.mark.parametrize("cls,maxed", CASES,
                         ids=[cls.__name__ for cls, _ in CASES])
def test_every_field_is_merged(cls, maxed):
    left = synthesize(cls, 1)
    right = synthesize(cls, 2)
    expected_left = synthesize(cls, 1)    # pristine copies for the oracle
    expected_right = synthesize(cls, 2)

    left.merge(right)

    for field in dataclasses.fields(cls):
        a = getattr(expected_left, field.name)
        b = getattr(expected_right, field.name)
        got = getattr(left, field.name)
        if isinstance(a, bool):
            assert got == (a or b), field.name
        elif isinstance(a, (int, float)):
            want = max(a, b) if field.name in maxed else a + b
            assert got == want, field.name
        elif isinstance(a, dict):
            for key in set(a) | set(b):
                assert got[key] == a.get(key, 0) + b.get(key, 0), \
                    f"{field.name}[{key}]"
        elif isinstance(a, list):
            assert got == a + b, field.name


@pytest.mark.parametrize("cls,maxed", CASES,
                         ids=[cls.__name__ for cls, _ in CASES])
def test_merge_into_defaults_preserves_other(cls, maxed):
    """Merging into a fresh instance reproduces the other side exactly."""
    target = cls()
    other = synthesize(cls, 3)
    target.merge(other)
    for field in dataclasses.fields(cls):
        assert getattr(target, field.name) == getattr(other, field.name), \
            field.name


def test_future_counter_fields_merge_automatically():
    """A field added tomorrow is merged with no code change: the guarantee."""

    @dataclasses.dataclass
    class Extended(SolverStats):
        brand_new_counter: int = 0

    left = Extended(brand_new_counter=3)
    right = Extended(brand_new_counter=4)
    left.merge(right)
    assert left.brand_new_counter == 7


def test_merge_counter_dataclass_rejects_non_dataclass():
    with pytest.raises(TypeError):
        merge_counter_dataclass(object(), object())
