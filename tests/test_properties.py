"""Seeded property-based cross-checks: simplifier vs interpreter vs solver.

A seeded generator grows random term trees over a small variable pool and
cross-checks three independent implementations on each:

* the **structural simplifier** must preserve the term's value on every
  concrete assignment (interpreter as the oracle),
* the **solver** must agree that the simplified term cannot differ from
  the original (``simplified != original`` is UNSAT), extending the
  verdict-preservation tests of ``test_solver_simplify.py`` from
  hand-picked identities to generated shapes,
* the **interpreter** must agree with the solver's model semantics: pinning
  every variable with equality constraints forces each term to its
  evaluated value (``term != value`` under the pin is UNSAT).

Seeds are pinned (CI runs one job per seed) and everything derives from
``random.Random(seed)``, so failures replay exactly.  Set
``REPRO_PROPERTY_SEED`` to append an extra seed locally.
"""

import os
import random

import pytest

from repro.solver.simplify import simplify
from repro.solver.solver import CheckResult, Solver
from repro.solver.terms import TermManager

SEEDS = [0, 1, 2]
if os.environ.get("REPRO_PROPERTY_SEED"):
    SEEDS.append(int(os.environ["REPRO_PROPERTY_SEED"]))

WIDTH = 8          # wide enough for carries/shifts, narrow enough to solve fast
TERMS_PER_SEED = 25
ASSIGNMENTS_PER_TERM = 8
SOLVER_CHECKS_PER_SEED = 6


def _random_term(rng, manager, variables, depth):
    """Grow a random bit-vector term tree over the variable pool."""
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.7:
            return rng.choice(variables)
        return manager.bv_const(rng.randrange(1 << WIDTH), WIDTH)
    binops = [manager.bvadd, manager.bvsub, manager.bvmul, manager.bvand,
              manager.bvor, manager.bvxor]
    unops = [manager.bvneg, manager.bvnot]
    if rng.random() < 0.2:
        op = rng.choice(unops)
        return op(_random_term(rng, manager, variables, depth - 1))
    if rng.random() < 0.15:
        condition = manager.eq(
            _random_term(rng, manager, variables, depth - 1),
            _random_term(rng, manager, variables, depth - 1))
        return manager.ite(
            condition,
            _random_term(rng, manager, variables, depth - 1),
            _random_term(rng, manager, variables, depth - 1))
    op = rng.choice(binops)
    return op(_random_term(rng, manager, variables, depth - 1),
              _random_term(rng, manager, variables, depth - 1))


def _random_assignment(rng, names):
    return {name: rng.randrange(1 << WIDTH) for name in names}


@pytest.fixture(params=SEEDS, ids=lambda seed: f"seed{seed}")
def seeded(request):
    rng = random.Random(request.param)
    manager = TermManager()
    names = ["a", "b", "c", "d"]
    variables = [manager.bv_var(name, WIDTH) for name in names]
    terms = [_random_term(rng, manager, variables, depth=rng.randint(2, 4))
             for _ in range(TERMS_PER_SEED)]
    return rng, manager, names, terms


def test_simplify_preserves_interpretation(seeded):
    rng, manager, names, terms = seeded
    for term in terms:
        simplified = simplify(manager, term)
        for _ in range(ASSIGNMENTS_PER_TERM):
            assignment = _random_assignment(rng, names)
            assert manager.evaluate(simplified, assignment) == \
                manager.evaluate(term, assignment), assignment


def test_same_operand_identities_reduce_on_random_subterms(seeded):
    # Construction folding and the simplifier together must collapse
    # same-operand identities however gnarly the shared operand is.
    rng, manager, names, terms = seeded
    for subterm in rng.sample(terms, 5):
        annihilated = simplify(manager, manager.bvxor(subterm, subterm))
        assert annihilated.is_const() and annihilated.value == 0
        cancelled = simplify(manager, manager.bvsub(subterm, subterm))
        assert cancelled.is_const() and cancelled.value == 0
        for idempotent in (manager.bvand, manager.bvor):
            reduced = simplify(manager, idempotent(subterm, subterm))
            assert reduced is simplify(manager, subterm)


def test_simplify_preserves_solver_verdict(seeded):
    rng, manager, names, terms = seeded
    for term in rng.sample(terms, SOLVER_CHECKS_PER_SEED):
        simplified = simplify(manager, term)
        solver = Solver(manager, timeout=30.0)
        solver.add(manager.distinct(simplified, term))
        assert solver.check() is CheckResult.UNSAT


def test_solver_models_match_interpreter(seeded):
    rng, manager, names, terms = seeded
    for term in rng.sample(terms, SOLVER_CHECKS_PER_SEED):
        assignment = _random_assignment(rng, names)
        expected = manager.evaluate(term, assignment)
        solver = Solver(manager, timeout=30.0)
        for name, value in assignment.items():
            solver.add(manager.eq(manager.bv_var(name, WIDTH),
                                  manager.bv_const(value, WIDTH)))
        solver.add(manager.distinct(term, manager.bv_const(expected, WIDTH)))
        assert solver.check() is CheckResult.UNSAT, assignment


def test_commutative_construction_is_order_blind(seeded):
    # The cache-key fix (engine/cache.py) relies on the term layer
    # canonicalizing commutative operands; generated operand pairs built in
    # both orders must hash-cons to the same node.
    rng, manager, names, terms = seeded
    for op in (manager.bvadd, manager.bvmul, manager.bvand,
               manager.bvor, manager.bvxor):
        left = rng.choice(terms)
        right = rng.choice(terms)
        assert op(left, right) is op(right, left)
