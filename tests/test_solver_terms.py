"""Unit tests for the bit-vector term DAG (repro.solver.terms)."""

import pytest

from repro.solver.terms import BOOL, BV, Op, TermManager, collect_variables


@pytest.fixture()
def mgr():
    return TermManager()


class TestSorts:
    def test_bool_sort(self):
        assert BOOL.is_bool()
        assert not BOOL.is_bv()

    def test_bv_sort(self):
        assert BV(32).is_bv()
        assert BV(32).width == 32

    def test_bv_sort_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            BV(0)
        with pytest.raises(ValueError):
            BV(-4)


class TestHashConsing:
    def test_constants_are_shared(self, mgr):
        assert mgr.bv_const(5, 8) is mgr.bv_const(5, 8)
        assert mgr.true() is mgr.bool_const(True)

    def test_variables_are_shared(self, mgr):
        assert mgr.bv_var("x", 16) is mgr.bv_var("x", 16)

    def test_different_width_constants_differ(self, mgr):
        assert mgr.bv_const(5, 8) is not mgr.bv_const(5, 16)

    def test_commutative_normalisation(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        assert mgr.bvadd(x, y) is mgr.bvadd(y, x)
        assert mgr.and_(mgr.bool_var("a"), mgr.bool_var("b")) is \
            mgr.and_(mgr.bool_var("b"), mgr.bool_var("a"))


class TestConstantFolding:
    def test_add_wraps(self, mgr):
        a = mgr.bv_const(250, 8)
        b = mgr.bv_const(10, 8)
        assert mgr.bvadd(a, b).value == (250 + 10) % 256

    def test_sub_wraps(self, mgr):
        assert mgr.bvsub(mgr.bv_const(0, 8), mgr.bv_const(1, 8)).value == 255

    def test_mul_wraps(self, mgr):
        assert mgr.bvmul(mgr.bv_const(16, 8), mgr.bv_const(17, 8)).value == (16 * 17) % 256

    def test_udiv_by_zero_is_all_ones(self, mgr):
        assert mgr.bvudiv(mgr.bv_const(7, 8), mgr.bv_const(0, 8)).value == 255

    def test_sdiv_signs(self, mgr):
        # -6 / 4 == -1 (truncating toward zero)
        result = mgr.bvsdiv(mgr.bv_const(-6, 8), mgr.bv_const(4, 8))
        assert result.value == (-1) & 0xFF

    def test_srem_sign_follows_dividend(self, mgr):
        result = mgr.bvsrem(mgr.bv_const(-7, 8), mgr.bv_const(4, 8))
        assert result.value == (-3) & 0xFF

    def test_shift_oversized_is_zero(self, mgr):
        assert mgr.bvshl(mgr.bv_const(1, 8), mgr.bv_const(9, 8)).value == 0
        assert mgr.bvlshr(mgr.bv_const(128, 8), mgr.bv_const(9, 8)).value == 0

    def test_ashr_keeps_sign(self, mgr):
        assert mgr.bvashr(mgr.bv_const(0x80, 8), mgr.bv_const(2, 8)).value == 0xE0

    def test_signed_compare(self, mgr):
        assert mgr.bvslt(mgr.bv_const(0xFF, 8), mgr.bv_const(1, 8)).value is True
        assert mgr.bvult(mgr.bv_const(0xFF, 8), mgr.bv_const(1, 8)).value is False

    def test_concat_extract(self, mgr):
        c = mgr.concat(mgr.bv_const(0xAB, 8), mgr.bv_const(0xCD, 8))
        assert c.width == 16 and c.value == 0xABCD
        assert mgr.extract(c, 15, 8).value == 0xAB

    def test_zext_sext(self, mgr):
        assert mgr.zext(mgr.bv_const(0x80, 8), 8).value == 0x80
        assert mgr.sext(mgr.bv_const(0x80, 8), 8).value == 0xFF80


class TestStructuralRewrites:
    def test_add_zero_identity(self, mgr):
        x = mgr.bv_var("x", 32)
        assert mgr.bvadd(x, mgr.bv_const(0, 32)) is x

    def test_self_subtraction_is_zero(self, mgr):
        x = mgr.bv_var("x", 32)
        assert mgr.bvsub(x, x).value == 0

    def test_double_negation(self, mgr):
        a = mgr.bool_var("a")
        assert mgr.not_(mgr.not_(a)) is a

    def test_and_contradiction(self, mgr):
        a = mgr.bool_var("a")
        assert mgr.and_(a, mgr.not_(a)).value is False

    def test_or_excluded_middle(self, mgr):
        a = mgr.bool_var("a")
        assert mgr.or_(a, mgr.not_(a)).value is True

    def test_eq_reflexive(self, mgr):
        x = mgr.bv_var("x", 8)
        assert mgr.eq(x, x).value is True

    def test_ule_reflexive(self, mgr):
        x = mgr.bv_var("x", 8)
        assert mgr.bvule(x, x).value is True
        assert mgr.bvult(x, x).value is False

    def test_ite_constant_condition(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        assert mgr.ite(mgr.true(), x, y) is x
        assert mgr.ite(mgr.false(), x, y) is y


class TestTypeChecking:
    def test_mismatched_widths_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.bvadd(mgr.bv_var("x", 8), mgr.bv_var("y", 16))

    def test_bool_in_arith_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.bvadd(mgr.bool_var("a"), mgr.bool_var("b"))

    def test_bv_in_and_rejected(self, mgr):
        with pytest.raises(TypeError):
            mgr.and_(mgr.bv_var("x", 8), mgr.bool_var("a"))

    def test_extract_bounds_checked(self, mgr):
        with pytest.raises(ValueError):
            mgr.extract(mgr.bv_var("x", 8), 8, 0)


class TestEvaluation:
    def test_evaluate_arith(self, mgr):
        x = mgr.bv_var("x", 8)
        y = mgr.bv_var("y", 8)
        expr = mgr.bvadd(mgr.bvmul(x, y), mgr.bv_const(3, 8))
        assert mgr.evaluate(expr, {"x": 5, "y": 7}) == (5 * 7 + 3) % 256

    def test_evaluate_compare(self, mgr):
        x = mgr.bv_var("x", 8)
        expr = mgr.bvslt(x, mgr.bv_const(0, 8))
        assert mgr.evaluate(expr, {"x": 0x90}) is True
        assert mgr.evaluate(expr, {"x": 0x10}) is False

    def test_evaluate_missing_variable_raises(self, mgr):
        x = mgr.bv_var("x", 8)
        with pytest.raises(KeyError):
            mgr.evaluate(x, {})

    def test_collect_variables(self, mgr):
        x = mgr.bv_var("x", 8)
        b = mgr.bool_var("b")
        expr = mgr.and_(b, mgr.bvult(x, mgr.bv_const(3, 8)))
        variables = collect_variables(expr)
        assert set(variables) == {"x", "b"}
        assert variables["x"].width == 8
