"""Integration + property tests for the bit-vector solver facade."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import CheckResult, Solver, TermManager
from repro.solver.simplify import simplify, term_size

WIDTH = 8


@pytest.fixture()
def mgr():
    return TermManager()


def solve(mgr, *terms, timeout=20.0):
    solver = Solver(mgr, timeout=timeout)
    for t in terms:
        solver.add(t)
    return solver, solver.check()


class TestBasicQueries:
    def test_trivially_true(self, mgr):
        _, result = solve(mgr, mgr.true())
        assert result is CheckResult.SAT

    def test_trivially_false(self, mgr):
        _, result = solve(mgr, mgr.false())
        assert result is CheckResult.UNSAT

    def test_equation_has_model(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver, result = solve(mgr, mgr.eq(mgr.bvadd(x, mgr.bv_const(1, WIDTH)),
                                           mgr.bv_const(5, WIDTH)))
        assert result is CheckResult.SAT
        assert solver.model()["x"] == 4

    def test_contradictory_equations(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        eq1 = mgr.eq(x, mgr.bv_const(3, WIDTH))
        eq2 = mgr.eq(x, mgr.bv_const(4, WIDTH))
        _, result = solve(mgr, eq1, eq2)
        assert result is CheckResult.UNSAT

    def test_unsigned_overflow_possible(self, mgr):
        # Exists x: x + 100 < x (unsigned wrap-around) is SAT.
        x = mgr.bv_var("x", WIDTH)
        _, result = solve(mgr, mgr.bvult(mgr.bvadd(x, mgr.bv_const(100, WIDTH)), x))
        assert result is CheckResult.SAT

    def test_no_unsigned_overflow_when_bounded(self, mgr):
        # x < 100 and x + 100 < x is UNSAT for 8-bit x... actually x<100 means
        # x+100 <= 199 < 256, no wrap, so x+100 > x always: UNSAT.
        x = mgr.bv_var("x", WIDTH)
        bound = mgr.bvult(x, mgr.bv_const(100, WIDTH))
        wrap = mgr.bvult(mgr.bvadd(x, mgr.bv_const(100, WIDTH)), x)
        _, result = solve(mgr, bound, wrap)
        assert result is CheckResult.UNSAT

    def test_signed_overflow_check_unsat_under_assumption(self, mgr):
        # The core STACK pattern: assume no signed overflow of x + 100 (i.e.
        # the infinite-precision result stays in range), then x + 100 < x is
        # unsatisfiable.
        x = mgr.bv_var("x", WIDTH)
        wide_x = mgr.sext(x, 1)
        wide_sum = mgr.bvadd(wide_x, mgr.bv_const(100, WIDTH + 1))
        in_range = mgr.and_(
            mgr.bvsle(mgr.bv_const(-(1 << (WIDTH - 1)), WIDTH + 1), wide_sum),
            mgr.bvsle(wide_sum, mgr.bv_const((1 << (WIDTH - 1)) - 1, WIDTH + 1)),
        )
        check_true = mgr.bvslt(mgr.bvadd(x, mgr.bv_const(100, WIDTH)), x)
        _, result = solve(mgr, in_range, check_true)
        assert result is CheckResult.UNSAT

    def test_push_pop(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = Solver(mgr, timeout=20.0)
        solver.add(mgr.bvult(x, mgr.bv_const(10, WIDTH)))
        solver.push()
        solver.add(mgr.bvugt(x, mgr.bv_const(20, WIDTH)))
        assert solver.check() is CheckResult.UNSAT
        solver.pop()
        assert solver.check() is CheckResult.SAT

    def test_stats_accumulate(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = Solver(mgr, timeout=20.0)
        solver.add(mgr.eq(x, mgr.bv_const(1, WIDTH)))
        solver.check()
        solver.check()
        assert solver.stats.queries == 2
        assert solver.stats.sat == 2


class TestArithmeticSemantics:
    """Cross-check bit-blasted semantics against the term evaluator."""

    def _model_satisfies(self, mgr, solver, term):
        model = solver.model()
        assignment = {name: model.get(name, 0) for name in model.as_dict()}
        assert mgr.evaluate(term, assignment)

    @pytest.mark.parametrize("op_name", ["bvadd", "bvsub", "bvmul", "bvand",
                                         "bvor", "bvxor", "bvshl", "bvlshr"])
    def test_op_has_consistent_model(self, mgr, op_name):
        x = mgr.bv_var("x", WIDTH)
        y = mgr.bv_var("y", WIDTH)
        op = getattr(mgr, op_name)
        constraint = mgr.and_(
            mgr.eq(op(x, y), mgr.bv_const(12, WIDTH)),
            mgr.bvugt(y, mgr.bv_const(1, WIDTH)),
        )
        solver, result = solve(mgr, constraint)
        if result is CheckResult.SAT:
            self._model_satisfies(mgr, solver, constraint)
        else:
            assert result is CheckResult.UNSAT

    def test_udiv_relation(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        constraint = mgr.eq(mgr.bvudiv(x, mgr.bv_const(3, WIDTH)),
                            mgr.bv_const(5, WIDTH))
        solver, result = solve(mgr, constraint)
        assert result is CheckResult.SAT
        assert solver.model()["x"] // 3 == 5

    def test_sdiv_most_negative_by_minus_one(self, mgr):
        # INT_MIN / -1 wraps to INT_MIN in the C* (wrap-around) semantics.
        int_min = mgr.bv_const(1 << (WIDTH - 1), WIDTH)
        minus_one = mgr.bv_const(-1, WIDTH)
        quotient = mgr.bvsdiv(int_min, minus_one)
        _, result = solve(mgr, mgr.eq(quotient, int_min))
        assert result is CheckResult.SAT

    def test_division_by_zero_smtlib_semantics(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        constraint = mgr.and_(
            mgr.eq(mgr.bvudiv(x, mgr.bv_const(0, WIDTH)),
                   mgr.bv_const(0xFF, WIDTH)),
        )
        _, result = solve(mgr, constraint)
        assert result is CheckResult.SAT


class TestSimplifier:
    def test_simplify_constant_expression(self, mgr):
        x = mgr.bv_const(4, WIDTH)
        expr = mgr.bvult(mgr.bvadd(x, mgr.bv_const(1, WIDTH)), mgr.bv_const(9, WIDTH))
        assert simplify(mgr, expr).value is True

    def test_simplify_sub_eq_zero(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        y = mgr.bv_var("y", WIDTH)
        expr = mgr.eq(mgr.bvsub(x, y), mgr.bv_const(0, WIDTH))
        simplified = simplify(mgr, expr)
        assert simplified is mgr.eq(x, y)

    def test_simplify_unsigned_lt_zero(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        assert simplify(mgr, mgr.bvult(x, mgr.bv_const(0, WIDTH))).value is False

    def test_term_size_counts_unique_nodes(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        expr = mgr.bvadd(x, x)
        assert term_size(expr) == 2


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_commutes_in_models(self, a, b):
        mgr = TermManager()
        x = mgr.bv_const(a, WIDTH)
        y = mgr.bv_const(b, WIDTH)
        assert mgr.bvadd(x, y).value == mgr.bvadd(y, x).value

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_evaluator_matches_python_semantics(self, a, b, c):
        mgr = TermManager()
        x, y, z = (mgr.bv_var(n, WIDTH) for n in "xyz")
        expr = mgr.bvadd(mgr.bvmul(x, y), mgr.bvsub(z, x))
        expected = (a * b + c - a) % 256
        assert mgr.evaluate(expr, {"x": a, "y": b, "z": c}) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 255))
    def test_solver_finds_specific_value(self, target):
        mgr = TermManager()
        x = mgr.bv_var("x", WIDTH)
        solver = Solver(mgr, timeout=20.0)
        solver.add(mgr.eq(x, mgr.bv_const(target, WIDTH)))
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] == target

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 254))
    def test_strict_sandwich_is_unsat(self, bound):
        # x < bound and x > bound is UNSAT for any bound.
        mgr = TermManager()
        x = mgr.bv_var("x", WIDTH)
        solver = Solver(mgr, timeout=20.0)
        solver.add(mgr.bvult(x, mgr.bv_const(bound, WIDTH)))
        solver.add(mgr.bvugt(x, mgr.bv_const(bound, WIDTH)))
        assert solver.check() is CheckResult.UNSAT
