"""Unit tests for the IR substrate: types, builder, CFG, dominators, printer, verifier."""

import pytest

from repro.ir import (
    BinOpKind,
    Function,
    FunctionType,
    ICmpPred,
    INT32,
    INT8,
    IntType,
    IRBuilder,
    Module,
    PointerType,
)
from repro.ir.cfg import back_edges, has_loops, reachable_blocks, reverse_postorder
from repro.ir.dominators import DominatorTree
from repro.ir.printer import print_function, print_instruction, print_module
from repro.ir.source import Origin, OriginKind, inline_origin, macro_origin
from repro.ir.types import ArrayType, type_size_bytes, VoidType
from repro.ir.values import Constant
from repro.ir.verifier import VerificationError, verify_function, verify_module


def make_function(name="f", params=(), return_type=INT32, param_names=()):
    ftype = FunctionType(return_type, tuple(params))
    return Function(name, ftype, param_names)


def build_diamond():
    """if (x < 10) y = 1; else y = 2; return y;"""
    func = make_function(params=[INT32], param_names=["x"])
    builder = IRBuilder(func)
    x = func.argument("x")
    then_bb = builder.new_block("then")
    else_bb = builder.new_block("else")
    join_bb = builder.new_block("join")
    cond = builder.icmp(ICmpPred.SLT, x, builder.const_int(INT32, 10))
    builder.cond_br(cond, then_bb, else_bb)
    builder.set_block(then_bb)
    builder.br(join_bb)
    builder.set_block(else_bb)
    builder.br(join_bb)
    builder.set_block(join_bb)
    phi = builder.phi(INT32, "y")
    phi.add_incoming(Constant(INT32, 1), then_bb)
    phi.add_incoming(Constant(INT32, 2), else_bb)
    builder.ret(phi)
    return func, then_bb, else_bb, join_bb


class TestTypes:
    def test_int_ranges(self):
        assert INT32.min_value == -(2 ** 31)
        assert INT32.max_value == 2 ** 31 - 1
        assert INT8.as_unsigned().max_value == 255

    def test_type_sizes(self):
        assert type_size_bytes(INT32) == 4
        assert type_size_bytes(PointerType(INT8)) == 8
        assert type_size_bytes(ArrayType(INT32, 10)) == 40

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_void_has_no_width(self):
        with pytest.raises(TypeError):
            VoidType().bit_width


class TestBuilderAndBlocks:
    def test_straight_line_function(self):
        func = make_function(params=[INT32, INT32], param_names=["a", "b"])
        builder = IRBuilder(func)
        total = builder.add(func.argument("a"), func.argument("b"))
        builder.ret(total)
        assert len(func.blocks) == 1
        assert func.entry.is_terminated()
        assert not verify_function(func)

    def test_append_after_terminator_rejected(self):
        func = make_function()
        builder = IRBuilder(func)
        builder.ret(builder.const_int(INT32, 0))
        with pytest.raises(ValueError):
            builder.add(builder.const_int(INT32, 1), builder.const_int(INT32, 2))

    def test_names_are_unique(self):
        func = make_function(params=[INT32], param_names=["x"])
        builder = IRBuilder(func)
        x = func.argument("x")
        names = {builder.add(x, x).name for _ in range(10)}
        assert len(names) == 10

    def test_binop_width_mismatch_rejected(self):
        func = make_function(params=[INT32, INT8], param_names=["a", "b"])
        builder = IRBuilder(func)
        with pytest.raises(TypeError):
            builder.add(func.argument("a"), func.argument("b"))

    def test_diamond_cfg_edges(self):
        func, then_bb, else_bb, join_bb = build_diamond()
        assert set(func.entry.successors()) == {then_bb, else_bb}
        assert join_bb.predecessors() == [then_bb, else_bb]
        assert not verify_function(func)

    def test_origin_metadata_propagates(self):
        func = make_function(params=[INT32], param_names=["x"])
        builder = IRBuilder(func)
        builder.set_origin(macro_origin("IS_A"))
        inst = builder.add(func.argument("x"), builder.const_int(INT32, 1))
        assert inst.origin.kind is OriginKind.MACRO
        assert "IS_A" in inst.origin.describe()
        assert inline_origin("callee").kind is OriginKind.INLINE


class TestCFG:
    def test_reverse_postorder_starts_at_entry(self):
        func, *_ = build_diamond()
        order = reverse_postorder(func)
        assert order[0] is func.entry
        assert len(order) == 4

    def test_reachability(self):
        func, *_ = build_diamond()
        dead = func.add_block("dead")
        builder = IRBuilder(func, dead)
        builder.ret(builder.const_int(INT32, 0))
        reachable = reachable_blocks(func)
        assert id(dead) not in reachable
        assert len(reachable) == 4

    def test_loop_detection(self):
        func = make_function(params=[INT32], param_names=["n"])
        builder = IRBuilder(func)
        header = builder.new_block("header")
        body = builder.new_block("body")
        exit_bb = builder.new_block("exit")
        builder.br(header)
        builder.set_block(header)
        cond = builder.icmp(ICmpPred.SLT, func.argument("n"), builder.const_int(INT32, 10))
        builder.cond_br(cond, body, exit_bb)
        builder.set_block(body)
        builder.br(header)
        builder.set_block(exit_bb)
        builder.ret(builder.const_int(INT32, 0))
        assert has_loops(func)
        assert len(back_edges(func)) == 1

    def test_diamond_has_no_loops(self):
        func, *_ = build_diamond()
        assert not has_loops(func)


class TestDominators:
    def test_entry_dominates_everything(self):
        func, then_bb, else_bb, join_bb = build_diamond()
        dom = DominatorTree(func)
        for block in (then_bb, else_bb, join_bb):
            assert dom.dominates(func.entry, block)

    def test_branches_do_not_dominate_join(self):
        func, then_bb, else_bb, join_bb = build_diamond()
        dom = DominatorTree(func)
        assert not dom.dominates(then_bb, join_bb)
        assert not dom.dominates(else_bb, join_bb)
        assert dom.immediate_dominator(join_bb) is func.entry

    def test_dominators_of_chain(self):
        func, then_bb, _else_bb, join_bb = build_diamond()
        dom = DominatorTree(func)
        chain = dom.dominators_of(join_bb)
        assert chain[0] is func.entry
        assert chain[-1] is join_bb
        assert then_bb not in chain

    def test_dominating_instructions_within_block(self):
        func = make_function(params=[INT32], param_names=["x"])
        builder = IRBuilder(func)
        x = func.argument("x")
        first = builder.add(x, builder.const_int(INT32, 1))
        second = builder.add(first, builder.const_int(INT32, 2))
        builder.ret(second)
        dom = DominatorTree(func)
        doms = dom.dominating_instructions(second)
        assert first in doms
        assert second not in doms


class TestPrinterAndVerifier:
    def test_print_function_contains_blocks(self):
        func, *_ = build_diamond()
        text = print_function(func)
        assert "define" in text
        assert "icmp slt" in text
        assert "phi" in text
        assert text.count(":") >= 4

    def test_print_module(self):
        module = Module("m")
        func, *_ = build_diamond()
        module.add_function(func)
        assert "; module m" in print_module(module)

    def test_print_instruction_store(self):
        func = make_function(params=[PointerType(INT32)], param_names=["p"])
        builder = IRBuilder(func)
        builder.store(builder.const_int(INT32, 3), func.argument("p"))
        builder.ret(builder.const_int(INT32, 0))
        text = print_function(func)
        assert "store" in text

    def test_verifier_catches_missing_terminator(self):
        func = make_function()
        func.add_block("entry")
        problems = verify_function(func)
        assert any("not terminated" in p for p in problems)

    def test_verifier_catches_bad_phi(self):
        func, then_bb, else_bb, join_bb = build_diamond()
        phi = join_bb.phis()[0]
        # Remove one incoming edge to make it inconsistent.
        phi.incoming = phi.incoming[:1]
        problems = verify_function(func)
        assert any("missing an incoming value" in p for p in problems)

    def test_verify_module_raises(self):
        module = Module("broken")
        func = make_function()
        func.add_block("entry")
        module.add_function(func)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_duplicate_function_rejected(self):
        module = Module()
        func, *_ = build_diamond()
        module.add_function(func)
        with pytest.raises(ValueError):
            module.add_function(func)
