"""Seeded property test: DIMACS emit → parse → solve roundtrips.

Random CNFs — both synthetic clause soups and real clause streams recorded
from the bit-blasting path — must survive :func:`repro.solver.cnf.emit_dimacs`
followed by :func:`repro.solver.cnf.parse_dimacs` with the same
satisfiability status, and every satisfying assignment found on the
roundtripped instance must check out against the original clauses.  The
canonical exporter must additionally be byte-stable: renumbering-invariant
and sorted, so two equal-structure CNFs export identical files.
"""

import random

import pytest

from repro.solver.bitblast import BitBlaster
from repro.solver.cnf import CnfBuilder, emit_dimacs, parse_dimacs
from repro.solver.sat import SatResult, SatSolver
from repro.solver.terms import TermManager

SEED = 20260807
ROUNDS = 25


def _solve(num_vars, clauses):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    for clause in clauses:
        solver.add_clause(list(clause))
    result = solver.solve()
    model = {v: solver.model_value(v) for v in range(1, num_vars + 1)} \
        if result is SatResult.SAT else None
    return result, model


def _check_assignment(clauses, model):
    """True iff ``model`` (var → bool) satisfies every clause."""
    for clause in clauses:
        if not any(model.get(abs(lit), False) == (lit > 0) for lit in clause):
            return False
    return True


def _random_cnf(rng):
    num_vars = rng.randint(3, 12)
    num_clauses = rng.randint(2, 40)
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, min(4, num_vars))
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append([v if rng.random() < 0.5 else -v for v in variables])
    return num_vars, clauses


def _random_term(rng, mgr, depth=3):
    """A random boolean term over a couple of 8-bit variables."""
    x = mgr.bv_var(f"x{rng.randint(0, 2)}", 8)
    y = mgr.bv_var(f"y{rng.randint(0, 2)}", 8)
    ops = [lambda: mgr.eq(mgr.bvadd(x, y), mgr.bv_const(rng.randint(0, 255), 8)),
           lambda: mgr.bvult(mgr.bvmul(x, y), mgr.bv_const(rng.randint(1, 255), 8)),
           lambda: mgr.eq(mgr.bvand(x, y), mgr.bvxor(x, y)),
           lambda: mgr.bvugt(mgr.bvsub(x, y), mgr.bv_const(rng.randint(0, 255), 8))]
    term = rng.choice(ops)()
    for _ in range(depth):
        if rng.random() < 0.5:
            term = mgr.and_(term, rng.choice(ops)())
        else:
            term = mgr.or_(term, rng.choice(ops)())
    return term


class TestSyntheticCnfs:
    def test_roundtrip_preserves_status_and_assignments(self):
        rng = random.Random(SEED)
        outcomes = set()
        for _ in range(ROUNDS):
            num_vars, clauses = _random_cnf(rng)
            original, _ = _solve(num_vars, clauses)
            # Non-canonical keeps the numbering, so the roundtripped model
            # is directly checkable against the original clauses.
            text = emit_dimacs(clauses, num_vars=num_vars, canonical=False)
            parsed_vars, parsed = parse_dimacs(text)
            replayed, model = _solve(parsed_vars, parsed)
            assert replayed is original
            outcomes.add(original)
            if model is not None:
                assert _check_assignment(clauses, model)
        # The generator produced both SAT and UNSAT instances, so the
        # property was exercised on both sides.
        assert outcomes == {SatResult.SAT, SatResult.UNSAT}

    def test_canonical_roundtrip_preserves_status(self):
        rng = random.Random(SEED + 1)
        for _ in range(ROUNDS):
            num_vars, clauses = _random_cnf(rng)
            original, _ = _solve(num_vars, clauses)
            parsed_vars, parsed = parse_dimacs(emit_dimacs(clauses))
            replayed, model = _solve(parsed_vars, parsed)
            assert replayed is original
            if model is not None:
                assert _check_assignment(parsed, model)

    def test_canonical_export_is_idempotent(self):
        rng = random.Random(SEED + 2)
        for _ in range(ROUNDS):
            _, clauses = _random_cnf(rng)
            once = emit_dimacs(clauses)
            _, parsed = parse_dimacs(once)
            assert emit_dimacs(parsed) == once


class TestBlastedCnfs:
    def test_blast_path_clause_streams_roundtrip(self):
        rng = random.Random(SEED + 3)
        for round_index in range(10):
            mgr = TermManager()
            term = _random_term(rng, mgr)

            sat = SatSolver()
            cnf = CnfBuilder(sat, record=True)
            blaster = BitBlaster(cnf)
            blaster.assert_term(term)
            original = sat.solve()
            if original is SatResult.UNKNOWN:
                continue

            text = emit_dimacs(cnf.clauses, num_vars=sat.num_vars,
                               canonical=False)
            parsed_vars, parsed = parse_dimacs(text)
            assert parsed_vars == sat.num_vars
            # The exporter sorts literals within each clause (the stable
            # byte-comparable contract); clause order and content survive.
            assert parsed == [sorted(c, key=lambda l: (abs(l), l < 0))
                              for c in cnf.clauses]
            replayed, model = _solve(parsed_vars, parsed)
            assert replayed is original, round_index
            if model is not None:
                assert _check_assignment(cnf.clauses, model), round_index

    def test_blasted_export_is_run_stable(self):
        # Two independent blasts of the same term must export byte-identical
        # canonical DIMACS (sorted variable maps + deterministic allocation).
        def blast_once():
            mgr = TermManager()
            rng = random.Random(SEED + 4)
            term = _random_term(rng, mgr)
            sat = SatSolver()
            cnf = CnfBuilder(sat, record=True)
            BitBlaster(cnf).assert_term(term)
            return emit_dimacs(cnf.clauses,
                               comment="blast export stability probe")

        assert blast_once() == blast_once()
