"""Tests for the simulated compiler passes, pipelines, profiles, and survey."""

import pytest

from repro.api import compile_source
from repro.compilers import (
    ALL_PROFILES,
    Capability,
    OptimizationPipeline,
    optimize_function,
    profile_by_name,
)
from repro.compilers.survey import (
    MARKER,
    PAPER_FIGURE4,
    SURVEY_EXAMPLES,
    discard_level,
    run_survey,
    survey_matrix,
)
from repro.ir.instructions import Return
from repro.ir.values import Constant


def marker_survives(module) -> bool:
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, Return) and isinstance(inst.value, Constant) \
                    and inst.value.value == MARKER:
                return True
    return False


def optimize(source: str, capabilities) -> bool:
    """Return True if the marker check survives optimization."""
    module = compile_source(source)
    pipeline = OptimizationPipeline(capabilities=set(capabilities))
    pipeline.run_module(module)
    return marker_survives(module)


SIGNED_CHECK = f"""
int f(int x) {{
    if (x + 100 < x) return {MARKER};
    return 0;
}}
"""

NULL_CHECK = f"""
int f(int *p) {{
    int v = *p;
    if (!p) return {MARKER};
    return v;
}}
"""

POINTER_CHECK = f"""
int f(char *p) {{
    if (p + 100 < p) return {MARKER};
    return 0;
}}
"""


class TestPasses:
    def test_signed_overflow_fold_requires_capability(self):
        assert optimize(SIGNED_CHECK, []) is True
        assert optimize(SIGNED_CHECK, [Capability.SIGNED_OVERFLOW_FOLD]) is False

    def test_null_check_elimination_requires_capability(self):
        assert optimize(NULL_CHECK, []) is True
        assert optimize(NULL_CHECK, [Capability.NULL_CHECK_ELIMINATION]) is False

    def test_pointer_overflow_fold_requires_capability(self):
        assert optimize(POINTER_CHECK, []) is True
        assert optimize(POINTER_CHECK, [Capability.POINTER_OVERFLOW_FOLD]) is False

    def test_value_range_fold_needs_both_capabilities(self):
        source = f"""
        int f(int x) {{
            if (x <= 0) return 0;
            if (x + 100 < 0) return {MARKER};
            return 1;
        }}
        """
        assert optimize(source, [Capability.SIGNED_OVERFLOW_FOLD]) is True
        assert optimize(source, [Capability.SIGNED_OVERFLOW_FOLD,
                                 Capability.VALUE_RANGE_SIGNED]) is False

    def test_shift_fold(self):
        source = f"""
        int f(int x) {{
            if (!(1 << x)) return {MARKER};
            return 0;
        }}
        """
        assert optimize(source, []) is True
        assert optimize(source, [Capability.OVERSIZED_SHIFT_FOLD]) is False

    def test_abs_fold(self):
        source = f"""
        int f(int x) {{
            if (abs(x) < 0) return {MARKER};
            return 0;
        }}
        """
        assert optimize(source, []) is True
        assert optimize(source, [Capability.ABS_FOLD]) is False

    def test_well_guarded_check_never_removed(self):
        source = f"""
        int f(int *p) {{
            if (!p) return {MARKER};
            return *p;
        }}
        """
        every_capability = list(Capability)
        assert optimize(source, every_capability) is True

    def test_optimize_function_reports_statistics(self):
        module = compile_source(SIGNED_CHECK)
        function = module.defined_functions()[0]
        context = optimize_function(function, [Capability.SIGNED_OVERFLOW_FOLD])
        assert context.folded_comparisons >= 1
        assert context.removed_blocks >= 1


class TestProfiles:
    def test_all_sixteen_profiles_present(self):
        assert len(ALL_PROFILES) == 16
        assert len({p.name for p in ALL_PROFILES}) == 16

    def test_profile_lookup(self):
        gcc = profile_by_name("gcc-4.8.1")
        assert gcc.vendor == "GNU"
        with pytest.raises(KeyError):
            profile_by_name("no-such-compiler")

    def test_capabilities_accumulate_with_level(self):
        gcc = profile_by_name("gcc-4.8.1")
        assert Capability.SIGNED_OVERFLOW_FOLD not in gcc.capabilities_at(1)
        assert Capability.SIGNED_OVERFLOW_FOLD in gcc.capabilities_at(2)
        assert gcc.capabilities_at(2) <= gcc.capabilities_at(3)

    def test_old_gcc_less_aggressive_than_new(self):
        old = profile_by_name("gcc-2.95.3")
        new = profile_by_name("gcc-4.8.1")
        assert len(old.capabilities_at(3)) < len(new.capabilities_at(3))


#: For each capability, a source whose guarded marker only the pipeline
#: running that capability (plus the CFG cleanup) can discard.
CAPABILITY_SOURCES = {
    Capability.SIGNED_OVERFLOW_FOLD: SIGNED_CHECK,
    Capability.NULL_CHECK_ELIMINATION: NULL_CHECK,
    Capability.POINTER_OVERFLOW_FOLD: POINTER_CHECK,
    Capability.OVERSIZED_SHIFT_FOLD: f"""
int f(int x) {{
    if (!(1 << x)) return {MARKER};
    return 0;
}}
""",
    Capability.ABS_FOLD: f"""
int f(int x) {{
    if (abs(x) < 0) return {MARKER};
    return 0;
}}
""",
}


class TestPipeline:
    """Pass application order and fixed-point behaviour of the pipeline."""

    @pytest.mark.parametrize("capability", sorted(CAPABILITY_SOURCES,
                                                  key=lambda c: c.name))
    def test_single_pipeline_run_folds_and_cleans_up(self, capability):
        # One run_function call must both fold the comparison
        # (instsimplify) and remove the dead guarded block (simplifycfg):
        # the passes iterate to a fixed point in capability order, so the
        # marker return is gone — not merely unreachable.
        module = compile_source(CAPABILITY_SOURCES[capability])
        function = module.defined_functions()[0]
        pipeline = OptimizationPipeline(capabilities={capability})
        context = pipeline.run_function(function)
        assert context.folded_comparisons >= 1
        assert context.removed_blocks >= 1
        assert not marker_survives(module)

    @pytest.mark.parametrize("capability", sorted(CAPABILITY_SOURCES,
                                                  key=lambda c: c.name))
    def test_pipeline_reaches_a_fixed_point(self, capability):
        # A second run over already-optimized IR must change nothing.
        module = compile_source(CAPABILITY_SOURCES[capability])
        function = module.defined_functions()[0]
        pipeline = OptimizationPipeline(capabilities={capability})
        pipeline.run_function(function)
        second = pipeline.run_function(function)
        assert second.folded_comparisons == 0
        assert second.removed_blocks == 0

    def test_capability_gating_is_exact(self):
        # Each capability folds its own idiom and no other: running every
        # pipeline against every source, folds happen exactly on the
        # diagonal (VALUE_RANGE_SIGNED and ALGEBRAIC_POINTER_REWRITE are
        # riders on other capabilities and have no solo column here).
        for capability, source in CAPABILITY_SOURCES.items():
            for other in CAPABILITY_SOURCES:
                survived = optimize(source, [other])
                assert survived == (other is not capability), \
                    f"{other.name} vs {capability.name} source"

    def test_run_module_accumulates_statistics(self):
        source = SIGNED_CHECK + SIGNED_CHECK.replace("int f(", "int g(")
        module = compile_source(source)
        pipeline = OptimizationPipeline(
            capabilities={Capability.SIGNED_OVERFLOW_FOLD})
        context = pipeline.run_module(module)
        assert context.folded_comparisons >= 2
        assert context.removed_blocks >= 2


class TestSurvey:
    def test_six_examples(self):
        assert len(SURVEY_EXAMPLES) == 6

    def test_discard_level_for_known_cells(self):
        gcc48 = profile_by_name("gcc-4.8.1")
        signed_example = next(e for e in SURVEY_EXAMPLES if e.key == "signed")
        assert discard_level(gcc48, signed_example) == 2
        gcc295 = profile_by_name("gcc-2.95.3")
        pointer_example = next(e for e in SURVEY_EXAMPLES if e.key == "pointer")
        assert discard_level(gcc295, pointer_example) is None

    def test_survey_subset_matches_paper(self):
        subset = [profile_by_name("gcc-4.8.1"), profile_by_name("clang-3.3"),
                  profile_by_name("msvc-11.0")]
        result = run_survey(profiles=subset)
        for profile in subset:
            for example in SURVEY_EXAMPLES:
                assert result.cell(profile.name, example.key) == \
                    PAPER_FIGURE4[profile.name][example.key]

    def test_matrix_rendering(self):
        subset = [profile_by_name("gcc-4.8.1")]
        result = run_survey(profiles=subset)
        text = survey_matrix(result)
        assert "gcc-4.8.1" in text
        assert "O2" in text

    def test_full_survey_reproduces_figure4_from_profiles(self):
        # The whole Figure 4 matrix — 16 compilers x 6 checks — regenerated
        # by actually running each profile's pass pipeline, not hand-checked
        # cell by cell: every cell must agree with the paper's table.
        result = run_survey()
        assert result.mismatches() == []
        assert result.matches_paper()
        assert set(result.matrix) == set(PAPER_FIGURE4)
        for compiler, row in result.matrix.items():
            assert set(row) == {e.key for e in SURVEY_EXAMPLES}, compiler
