"""Tests for the simulated compiler passes, pipelines, profiles, and survey."""

import pytest

from repro.api import compile_source
from repro.compilers import (
    ALL_PROFILES,
    Capability,
    OptimizationPipeline,
    optimize_function,
    profile_by_name,
)
from repro.compilers.survey import (
    MARKER,
    PAPER_FIGURE4,
    SURVEY_EXAMPLES,
    discard_level,
    run_survey,
    survey_matrix,
)
from repro.ir.instructions import Return
from repro.ir.values import Constant


def marker_survives(module) -> bool:
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, Return) and isinstance(inst.value, Constant) \
                    and inst.value.value == MARKER:
                return True
    return False


def optimize(source: str, capabilities) -> bool:
    """Return True if the marker check survives optimization."""
    module = compile_source(source)
    pipeline = OptimizationPipeline(capabilities=set(capabilities))
    pipeline.run_module(module)
    return marker_survives(module)


SIGNED_CHECK = f"""
int f(int x) {{
    if (x + 100 < x) return {MARKER};
    return 0;
}}
"""

NULL_CHECK = f"""
int f(int *p) {{
    int v = *p;
    if (!p) return {MARKER};
    return v;
}}
"""

POINTER_CHECK = f"""
int f(char *p) {{
    if (p + 100 < p) return {MARKER};
    return 0;
}}
"""


class TestPasses:
    def test_signed_overflow_fold_requires_capability(self):
        assert optimize(SIGNED_CHECK, []) is True
        assert optimize(SIGNED_CHECK, [Capability.SIGNED_OVERFLOW_FOLD]) is False

    def test_null_check_elimination_requires_capability(self):
        assert optimize(NULL_CHECK, []) is True
        assert optimize(NULL_CHECK, [Capability.NULL_CHECK_ELIMINATION]) is False

    def test_pointer_overflow_fold_requires_capability(self):
        assert optimize(POINTER_CHECK, []) is True
        assert optimize(POINTER_CHECK, [Capability.POINTER_OVERFLOW_FOLD]) is False

    def test_value_range_fold_needs_both_capabilities(self):
        source = f"""
        int f(int x) {{
            if (x <= 0) return 0;
            if (x + 100 < 0) return {MARKER};
            return 1;
        }}
        """
        assert optimize(source, [Capability.SIGNED_OVERFLOW_FOLD]) is True
        assert optimize(source, [Capability.SIGNED_OVERFLOW_FOLD,
                                 Capability.VALUE_RANGE_SIGNED]) is False

    def test_shift_fold(self):
        source = f"""
        int f(int x) {{
            if (!(1 << x)) return {MARKER};
            return 0;
        }}
        """
        assert optimize(source, []) is True
        assert optimize(source, [Capability.OVERSIZED_SHIFT_FOLD]) is False

    def test_abs_fold(self):
        source = f"""
        int f(int x) {{
            if (abs(x) < 0) return {MARKER};
            return 0;
        }}
        """
        assert optimize(source, []) is True
        assert optimize(source, [Capability.ABS_FOLD]) is False

    def test_well_guarded_check_never_removed(self):
        source = f"""
        int f(int *p) {{
            if (!p) return {MARKER};
            return *p;
        }}
        """
        every_capability = list(Capability)
        assert optimize(source, every_capability) is True

    def test_optimize_function_reports_statistics(self):
        module = compile_source(SIGNED_CHECK)
        function = module.defined_functions()[0]
        context = optimize_function(function, [Capability.SIGNED_OVERFLOW_FOLD])
        assert context.folded_comparisons >= 1
        assert context.removed_blocks >= 1


class TestProfiles:
    def test_all_sixteen_profiles_present(self):
        assert len(ALL_PROFILES) == 16
        assert len({p.name for p in ALL_PROFILES}) == 16

    def test_profile_lookup(self):
        gcc = profile_by_name("gcc-4.8.1")
        assert gcc.vendor == "GNU"
        with pytest.raises(KeyError):
            profile_by_name("no-such-compiler")

    def test_capabilities_accumulate_with_level(self):
        gcc = profile_by_name("gcc-4.8.1")
        assert Capability.SIGNED_OVERFLOW_FOLD not in gcc.capabilities_at(1)
        assert Capability.SIGNED_OVERFLOW_FOLD in gcc.capabilities_at(2)
        assert gcc.capabilities_at(2) <= gcc.capabilities_at(3)

    def test_old_gcc_less_aggressive_than_new(self):
        old = profile_by_name("gcc-2.95.3")
        new = profile_by_name("gcc-4.8.1")
        assert len(old.capabilities_at(3)) < len(new.capabilities_at(3))


class TestSurvey:
    def test_six_examples(self):
        assert len(SURVEY_EXAMPLES) == 6

    def test_discard_level_for_known_cells(self):
        gcc48 = profile_by_name("gcc-4.8.1")
        signed_example = next(e for e in SURVEY_EXAMPLES if e.key == "signed")
        assert discard_level(gcc48, signed_example) == 2
        gcc295 = profile_by_name("gcc-2.95.3")
        pointer_example = next(e for e in SURVEY_EXAMPLES if e.key == "pointer")
        assert discard_level(gcc295, pointer_example) is None

    def test_survey_subset_matches_paper(self):
        subset = [profile_by_name("gcc-4.8.1"), profile_by_name("clang-3.3"),
                  profile_by_name("msvc-11.0")]
        result = run_survey(profiles=subset)
        for profile in subset:
            for example in SURVEY_EXAMPLES:
                assert result.cell(profile.name, example.key) == \
                    PAPER_FIGURE4[profile.name][example.key]

    def test_matrix_rendering(self):
        subset = [profile_by_name("gcc-4.8.1")]
        result = run_survey(profiles=subset)
        text = survey_matrix(result)
        assert "gcc-4.8.1" in text
        assert "O2" in text
