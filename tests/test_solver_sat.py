"""Unit tests for the CDCL SAT solver (repro.solver.sat)."""

import random

import pytest

from repro.solver.sat import SatResult, SatSolver


def make_vars(solver, count):
    return [solver.new_var() for _ in range(count)]


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve() is SatResult.SAT

    def test_unit_clause(self):
        s = SatSolver()
        x = s.new_var()
        s.add_clause([x])
        assert s.solve() is SatResult.SAT
        assert s.model_value(x) is True

    def test_contradictory_units(self):
        s = SatSolver()
        x = s.new_var()
        s.add_clause([x])
        s.add_clause([-x])
        assert s.solve() is SatResult.UNSAT

    def test_empty_clause_is_unsat(self):
        s = SatSolver()
        s.new_var()
        assert s.add_clause([]) is False
        assert s.solve() is SatResult.UNSAT

    def test_simple_implication_chain(self):
        s = SatSolver()
        a, b, c = make_vars(s, 3)
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        s.add_clause([a])
        assert s.solve() is SatResult.SAT
        assert s.model_value(a) and s.model_value(b) and s.model_value(c)

    def test_tautology_clause_ignored(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a, -a])
        assert s.solve() is SatResult.SAT


class TestKnownFormulas:
    def test_xor_chain_sat(self):
        # (a xor b) encoded as CNF, plus a forced
        s = SatSolver()
        a, b = make_vars(s, 2)
        s.add_clause([a, b])
        s.add_clause([-a, -b])
        s.add_clause([a])
        assert s.solve() is SatResult.SAT
        assert s.model_value(a) is True
        assert s.model_value(b) is False

    def test_pigeonhole_3_into_2_unsat(self):
        # 3 pigeons, 2 holes: var p_{i,j} means pigeon i in hole j.
        s = SatSolver()
        p = [[s.new_var() for _ in range(2)] for _ in range(3)]
        for i in range(3):
            s.add_clause([p[i][0], p[i][1]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[i1][j], -p[i2][j]])
        assert s.solve() is SatResult.UNSAT

    def test_php_4_into_3_unsat(self):
        s = SatSolver()
        n_pigeons, n_holes = 4, 3
        p = [[s.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for i in range(n_pigeons):
            s.add_clause([p[i][j] for j in range(n_holes)])
        for j in range(n_holes):
            for i1 in range(n_pigeons):
                for i2 in range(i1 + 1, n_pigeons):
                    s.add_clause([-p[i1][j], -p[i2][j]])
        assert s.solve() is SatResult.UNSAT

    def test_graph_coloring_triangle_two_colors_unsat(self):
        # A triangle cannot be 2-colored.
        s = SatSolver()
        color = [[s.new_var() for _ in range(2)] for _ in range(3)]
        edges = [(0, 1), (1, 2), (0, 2)]
        for v in range(3):
            s.add_clause([color[v][0], color[v][1]])
            s.add_clause([-color[v][0], -color[v][1]])
        for u, v in edges:
            for c in range(2):
                s.add_clause([-color[u][c], -color[v][c]])
        assert s.solve() is SatResult.UNSAT

    def test_graph_coloring_triangle_three_colors_sat(self):
        s = SatSolver()
        color = [[s.new_var() for _ in range(3)] for _ in range(3)]
        edges = [(0, 1), (1, 2), (0, 2)]
        for v in range(3):
            s.add_clause([color[v][c] for c in range(3)])
        for u, v in edges:
            for c in range(3):
                s.add_clause([-color[u][c], -color[v][c]])
        assert s.solve() is SatResult.SAT
        model = s.model()
        for u, v in edges:
            colors_u = {c for c in range(3) if model[color[u][c]]}
            colors_v = {c for c in range(3) if model[color[v][c]]}
            assert colors_u.isdisjoint(colors_v) or not (colors_u & colors_v)


class TestModelSoundness:
    def _check_model_satisfies(self, clauses, model):
        for clause in clauses:
            satisfied = any(
                (lit > 0) == model[abs(lit)] for lit in clause
            )
            assert satisfied, f"clause {clause} not satisfied by model"

    @pytest.mark.parametrize("seed", range(6))
    def test_random_3sat_models_are_valid(self, seed):
        rng = random.Random(seed)
        n_vars, n_clauses = 20, 60
        s = SatSolver()
        variables = make_vars(s, n_vars)
        clauses = []
        for _ in range(n_clauses):
            chosen = rng.sample(variables, 3)
            clause = [v if rng.random() < 0.5 else -v for v in chosen]
            clauses.append(clause)
            s.add_clause(clause)
        result = s.solve()
        if result is SatResult.SAT:
            self._check_model_satisfies(clauses, s.model())
        else:
            assert result is SatResult.UNSAT

    def test_random_unsat_by_all_polarities(self):
        # For 3 variables, adding all 8 sign combinations of a clause is UNSAT.
        s = SatSolver()
        a, b, c = make_vars(s, 3)
        for mask in range(8):
            clause = [
                a if mask & 1 else -a,
                b if mask & 2 else -b,
                c if mask & 4 else -c,
            ]
            s.add_clause(clause)
        assert s.solve() is SatResult.UNSAT


class TestResourceLimits:
    def test_conflict_budget_returns_unknown(self):
        # A hard pigeonhole instance with a tiny conflict budget.
        s = SatSolver()
        n_pigeons, n_holes = 7, 6
        p = [[s.new_var() for _ in range(n_holes)] for _ in range(n_pigeons)]
        for i in range(n_pigeons):
            s.add_clause([p[i][j] for j in range(n_holes)])
        for j in range(n_holes):
            for i1 in range(n_pigeons):
                for i2 in range(i1 + 1, n_pigeons):
                    s.add_clause([-p[i1][j], -p[i2][j]])
        result = s.solve(max_conflicts=5)
        assert result in (SatResult.UNKNOWN, SatResult.UNSAT)

    def test_statistics_are_tracked(self):
        s = SatSolver()
        a, b = make_vars(s, 2)
        s.add_clause([a, b])
        s.add_clause([-a, b])
        s.add_clause([a, -b])
        s.solve()
        assert s.propagations >= 0
        assert s.decisions >= 0
