"""Metamorphic invariance of checker verdicts (docs/CLUSTER.md).

The clustering subsystem's soundness rests on one claim: the checker's
verdict is invariant under alpha-renaming, reordering of the block list,
and commutative operand swaps — exactly the transformations the structural
fingerprint normalizes away.  These tests state that claim directly against
the snippet corpus: transform the compiled IR, re-run the full checker, and
the verdicts must not move.

Verdicts are compared through a reduced signature — source location,
algorithm, message, minimal UB-condition set, classification — because the
full :func:`repro.core.report.diagnostic_signature` embeds function and
value names, which the transformations change by construction.
"""

import pytest

from repro.api import compile_source
from repro.cluster.fingerprint import COMMUTATIVE_BINOPS, COMMUTATIVE_PREDS
from repro.core.checker import CheckerConfig, StackChecker
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.ir.instructions import BinaryOp, ICmp
from repro.ir.verifier import verify_module

# A corpus slice that covers every UB kind but keeps the suite fast: every
# unstable template plus stable padding that must stay unflagged throughout.
CORPUS = SNIPPETS + STABLE_SNIPPETS[:4]


def _reduced_signature(report):
    return sorted(
        (str(d.location), d.algorithm.value, d.message,
         tuple(sorted(c.kind.value for c in d.ub_set.conditions)),
         d.classification)
        for d in report.bugs)


def _check(module):
    return StackChecker(CheckerConfig()).check_module(module)


def _compile(snippet):
    return compile_source(snippet.render("meta"), f"{snippet.name}.c")


def _alpha_rename(module):
    for function in module.defined_functions():
        for index, argument in enumerate(function.arguments):
            argument.name = f"mm_arg{index}"
        for index, block in enumerate(function.blocks):
            block.name = f"mm_bb{index}"
        serial = 0
        for block in function.blocks:
            for inst in block.instructions:
                if inst.name:
                    inst.name = f"mm_v{serial}"
                    serial += 1


def _reorder_blocks(module):
    for function in module.defined_functions():
        function.blocks[1:] = reversed(function.blocks[1:])


def _swap_commutative_operands(module):
    swapped = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            commutative = (
                isinstance(inst, BinaryOp) and inst.kind in COMMUTATIVE_BINOPS
            ) or (isinstance(inst, ICmp) and inst.pred in COMMUTATIVE_PREDS)
            if commutative:
                inst.operands[0], inst.operands[1] = \
                    inst.operands[1], inst.operands[0]
                swapped += 1
    return swapped


@pytest.fixture(scope="module")
def baselines():
    return {snippet.name: _reduced_signature(_check(_compile(snippet)))
            for snippet in CORPUS}


def test_baseline_flags_unstable_and_spares_stable(baselines):
    for snippet in CORPUS:
        if snippet.is_unstable:
            assert baselines[snippet.name], snippet.name
        else:
            assert not baselines[snippet.name], snippet.name


@pytest.mark.parametrize("snippet", CORPUS, ids=lambda s: s.name)
def test_alpha_renaming_preserves_verdicts(snippet, baselines):
    module = _compile(snippet)
    _alpha_rename(module)
    verify_module(module)
    assert _reduced_signature(_check(module)) == baselines[snippet.name]


@pytest.mark.parametrize("snippet", CORPUS, ids=lambda s: s.name)
def test_block_reordering_preserves_verdicts(snippet, baselines):
    module = _compile(snippet)
    _reorder_blocks(module)
    verify_module(module)
    assert _reduced_signature(_check(module)) == baselines[snippet.name]


@pytest.mark.parametrize("snippet", CORPUS, ids=lambda s: s.name)
def test_commutative_swaps_preserve_verdicts(snippet, baselines):
    module = _compile(snippet)
    _swap_commutative_operands(module)
    verify_module(module)
    assert _reduced_signature(_check(module)) == baselines[snippet.name]


def test_commutative_swap_actually_rewrites_something():
    # Non-vacuity: the corpus must contain commutative operations, or the
    # swap test above proves nothing.
    total = sum(_swap_commutative_operands(_compile(snippet))
                for snippet in CORPUS)
    assert total > 0


def test_transforms_compose(baselines):
    # All three transformations stacked — the worst case a clustered corpus
    # member can present relative to its representative.
    for snippet in CORPUS[:6]:
        module = _compile(snippet)
        _alpha_rename(module)
        _reorder_blocks(module)
        _swap_commutative_operands(module)
        verify_module(module)
        assert _reduced_signature(_check(module)) == baselines[snippet.name]
