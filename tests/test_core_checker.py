"""End-to-end checker tests on the paper's examples (§2.2, §6.2)."""

import pytest

from repro import check_source
from repro.core.checker import CheckerConfig
from repro.core.report import Algorithm
from repro.core.ubconditions import UBKind


def kinds_of(report):
    kinds = set()
    for bug in report.bugs:
        kinds.update(bug.ub_kinds)
    return kinds


def algorithms_of(report):
    return {bug.algorithm for bug in report.bugs}


class TestFigure4Checks:
    """The six unstable sanity checks from Figure 4 must all be flagged."""

    def test_pointer_overflow_check(self):
        report = check_source("""
            int f(char *p) {
                if (p + 100 < p) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.POINTER_OVERFLOW in kinds_of(report)

    def test_null_check_after_dereference(self):
        report = check_source("""
            int f(int *p) {
                int x = *p;
                if (!p) return -1;
                return x;
            }
        """)
        assert report.bugs
        assert UBKind.NULL_DEREF in kinds_of(report)

    def test_signed_overflow_check(self):
        report = check_source("""
            int f(int x) {
                if (x + 100 < x) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.SIGNED_OVERFLOW in kinds_of(report)

    def test_positive_signed_overflow_check(self):
        # if (x+ + 100 < 0) with x known positive
        report = check_source("""
            int f(int x) {
                if (x <= 0) return 0;
                if (x + 100 < 0) return -1;
                return 1;
            }
        """)
        assert report.bugs
        assert UBKind.SIGNED_OVERFLOW in kinds_of(report)

    def test_oversized_shift_check(self):
        report = check_source("""
            int f(int x) {
                if (!(1 << x)) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.OVERSIZED_SHIFT in kinds_of(report)

    def test_abs_overflow_check(self):
        report = check_source("""
            int f(int x) {
                if (abs(x) < 0) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.ABS_OVERFLOW in kinds_of(report)


class TestCaseStudies:
    """§6.2 case studies (Figures 1, 2, 10-15)."""

    def test_figure1_buffer_bounds_check(self):
        report = check_source("""
            int check(char *buf, char *buf_end, unsigned int len) {
                if (buf + len >= buf_end) return -1;
                if (buf + len < buf) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.POINTER_OVERFLOW in kinds_of(report)

    def test_figure2_tun_null_check(self):
        report = check_source("""
            struct sock { int fd; };
            struct tun_struct { struct sock *sk; };
            int poll(struct tun_struct *tun) {
                struct sock *sk = tun->sk;
                if (!tun) return 1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.NULL_DEREF in kinds_of(report)
        assert Algorithm.ELIMINATION in algorithms_of(report)

    def test_figure10_postgres_division_overflow_check(self):
        report = check_source("""
            int64_t int8div(int64_t arg1, int64_t arg2) {
                if (arg2 == 0) return 0;
                int64_t result = arg1 / arg2;
                if (arg2 == -1 && arg1 < 0 && result <= 0) return 0;
                return result;
            }
        """)
        assert report.bugs
        assert UBKind.SIGNED_OVERFLOW in kinds_of(report)

    def test_figure11_strchr_plus_one_null_check(self):
        report = check_source("""
            int parse_node(char *buf) {
                unsigned long node;
                char *nodep = strchr(buf, '.') + 1;
                if (!nodep) return -5;
                node = simple_strtoul(nodep, 0, 10);
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.POINTER_OVERFLOW in kinds_of(report)

    def test_figure12_ffmpeg_bounds_check_simplified_by_algebra(self):
        report = check_source("""
            int parse(char *data, char *data_end, int size) {
                if (data + size >= data_end || data + size < data) return -1;
                data = data + size;
                return 0;
            }
        """)
        assert report.bugs
        assert Algorithm.SIMPLIFY_ALGEBRA in algorithms_of(report)
        assert any("< 0" in bug.replacement for bug in report.bugs)

    def test_figure13_plan9_negation_check(self):
        report = check_source("""
            int pdec(int k) {
                if (k < 0) {
                    if (-k >= 0) return 1;
                    return 2;
                }
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.SIGNED_OVERFLOW in kinds_of(report)
        assert any(bug.replacement == "true" for bug in report.bugs)

    def test_figure14_postgres_time_bomb(self):
        report = check_source("""
            int check_min(int64_t arg1) {
                if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0))) return -1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.SIGNED_OVERFLOW in kinds_of(report)

    def test_figure15_redundant_null_check(self):
        # The caller guarantees c is non-null; the code is still flagged
        # (it is unstable), and the classification machinery is what marks it
        # as redundant in the corpus.
        report = check_source("""
            struct p9_client { long trans; int status; };
            int disconnect(struct p9_client *c) {
                long rdma = c->trans;
                if (c) return 1;
                return 0;
            }
        """)
        assert report.bugs
        assert UBKind.NULL_DEREF in kinds_of(report)


class TestStableCode:
    """Well-written checks must NOT be flagged (no false positives)."""

    def test_correct_division_guard(self):
        report = check_source("""
            int f(int x, int y) {
                if (y == 0) return -1;
                return x / y;
            }
        """)
        assert not report.bugs

    def test_correct_overflow_check_before_operation(self):
        report = check_source("""
            int f(int x) {
                if (x > 2147483547) return -1;
                if (x < 0) return -1;
                return x + 100;
            }
        """)
        assert not report.bugs

    def test_null_check_before_dereference(self):
        report = check_source("""
            int f(int *p) {
                if (!p) return -1;
                return *p;
            }
        """)
        assert not report.bugs

    def test_len_checked_against_remaining_space(self):
        # The recommended rewrite from §6.2.2: x >= data_end - data.
        report = check_source("""
            int parse(char *data, char *data_end, long size) {
                if (size < 0 || size >= data_end - data) return -1;
                return 0;
            }
        """)
        assert not report.bugs

    def test_unsigned_wraparound_is_defined(self):
        report = check_source("""
            unsigned int f(unsigned int x) {
                if (x + 100u < x) return 0;
                return x + 100u;
            }
        """)
        # Unsigned wraparound is well defined; the check is meaningful.
        assert not report.bugs

    def test_plain_arithmetic_not_flagged(self):
        report = check_source("""
            int sum3(int a, int b, int c) { return a + b + c; }
        """)
        assert not report.bugs


class TestCheckerConfiguration:
    def test_macro_origin_reports_suppressed_by_default(self):
        source = """
            #define IS_VALID(p) ((p) != 0)
            struct obj { int tag; };
            int f(struct obj *p) {
                int t = p->tag;
                if (!IS_VALID(p)) return -1;
                return t;
            }
        """
        default_report = check_source(source)
        assert not any(b.origin and b.origin.kind.value == "macro"
                       for b in default_report.bugs)

        config = CheckerConfig(ignore_compiler_generated=False)
        verbose_report = check_source(source, config=config)
        assert len(verbose_report.bugs) >= len(default_report.bugs)

    def test_disabling_algorithms(self):
        source = """
            int f(int x) {
                if (x + 100 < x) return -1;
                return 0;
            }
        """
        config = CheckerConfig(enable_elimination=False,
                               enable_boolean_oracle=False,
                               enable_algebra_oracle=False)
        report = check_source(source, config=config)
        assert not report.bugs

    def test_query_statistics_populated(self):
        report = check_source("int f(int x) { if (x + 1 < x) return 1; return 0; }")
        assert report.queries > 0
        assert report.timeouts == 0
        assert report.analysis_time >= 0.0

    def test_report_describe_is_readable(self):
        report = check_source("""
            int f(int *p) { int x = *p; if (!p) return -1; return x; }
        """)
        text = report.describe()
        assert "unstable code" in text
        assert "null pointer dereference" in text

    def test_by_algorithm_and_by_kind_breakdowns(self):
        report = check_source("""
            int f(int *p) { int x = *p; if (!p) return -1; return x; }
        """)
        by_algorithm = report.by_algorithm()
        assert sum(by_algorithm.values()) == len(report.bugs)
        by_kind = report.by_ub_kind()
        assert UBKind.NULL_DEREF in by_kind
