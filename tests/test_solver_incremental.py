"""Incremental solving: assumptions, activation-literal push/pop, reuse.

Covers the edge cases the incremental refactor introduces:

* assumption-based ``check`` on a persistent clause database,
* push/pop interleaved with assumptions,
* UNSAT-core-free assumption failure reporting,
* budget exhaustion mid-run leaving the solver reusable,
* determinism: incremental checking returns verdicts identical to scratch
  solving on the snippet corpus.
"""

import pytest

from repro.api import check_source
from repro.core.checker import CheckerConfig, StackChecker
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.solver import CheckResult, Solver, TermManager

WIDTH = 8


@pytest.fixture()
def mgr():
    return TermManager()


def _incremental(mgr, **kwargs):
    kwargs.setdefault("timeout", 20.0)
    return Solver(mgr, incremental=True, **kwargs)


# -- assumptions over a persistent clause database ---------------------------------


class TestAssumptions:
    def test_assumptions_hold_only_for_one_check(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(10, WIDTH)))

        low = mgr.bvult(x, mgr.bv_const(3, WIDTH))
        high = mgr.bvuge(x, mgr.bv_const(3, WIDTH))
        assert solver.check(assumptions=[low]) is CheckResult.SAT
        assert solver.model()["x"] < 3
        assert solver.check(assumptions=[high]) is CheckResult.SAT
        assert 3 <= solver.model()["x"] < 10
        # Contradictory assumptions: UNSAT, but only for that call.
        assert solver.check(assumptions=[low, high]) is CheckResult.UNSAT
        assert solver.check() is CheckResult.SAT

    def test_unsat_base_reported_without_assumptions(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(3, WIDTH)))
        solver.add(mgr.bvugt(x, mgr.bv_const(5, WIDTH)))
        assert solver.check() is CheckResult.UNSAT
        assert solver.failed_assumptions() == []

    def test_assumption_failure_reporting_is_core_free(self, mgr):
        # The failure report names the per-call terms the refutation relied
        # on, without minimizing them into an UNSAT core.
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(3, WIDTH)))

        bad = mgr.bvugt(x, mgr.bv_const(200, WIDTH))
        assert solver.check(assumptions=[bad]) is CheckResult.UNSAT
        failed = solver.failed_assumptions()
        assert failed and all(t is bad for t in failed)
        assert solver.stats.assumption_failures >= 1
        # The solver stays consistent and reusable after the failure.
        assert solver.check() is CheckResult.SAT

    def test_extra_is_treated_as_assumption(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(3, WIDTH)))
        assert solver.check(
            extra=[mgr.bvugt(x, mgr.bv_const(7, WIDTH))]) is CheckResult.UNSAT
        assert solver.check() is CheckResult.SAT


# -- push/pop via activation literals ----------------------------------------------


class TestPushPop:
    def test_pop_restores_satisfiability(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(100, WIDTH)))
        assert solver.check() is CheckResult.SAT

        solver.push()
        solver.add(mgr.bvugt(x, mgr.bv_const(200, WIDTH)))
        assert solver.check() is CheckResult.UNSAT
        solver.pop()
        assert solver.check() is CheckResult.SAT

    def test_push_pop_interleaved_with_assumptions(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        y = mgr.bv_var("y", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(50, WIDTH)))

        solver.push()
        solver.add(mgr.eq(y, mgr.bvadd(x, mgr.bv_const(1, WIDTH))))
        # Assumption inside the frame.
        assert solver.check(
            assumptions=[mgr.bvult(y, mgr.bv_const(10, WIDTH))]) is CheckResult.SAT
        model = solver.model()
        assert model["y"] == (model["x"] + 1) % (1 << WIDTH)
        # Contradicting the frame via an assumption is UNSAT ...
        assert solver.check(
            assumptions=[mgr.bvugt(y, mgr.bv_const(60, WIDTH))]) is CheckResult.UNSAT
        solver.pop()
        # ... but after the pop the same assumption is satisfiable again.
        assert solver.check(
            assumptions=[mgr.bvugt(y, mgr.bv_const(60, WIDTH))]) is CheckResult.SAT

        # A second frame on the same solver still works (fresh activation).
        solver.push()
        solver.add(mgr.bvugt(x, mgr.bv_const(40, WIDTH)))
        assert solver.check() is CheckResult.SAT
        assert 40 < solver.model()["x"] < 50
        solver.pop()

    def test_nested_frames(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.push()
        solver.add(mgr.bvuge(x, mgr.bv_const(10, WIDTH)))
        solver.push()
        solver.add(mgr.bvult(x, mgr.bv_const(5, WIDTH)))
        assert solver.check() is CheckResult.UNSAT
        solver.pop()
        assert solver.check() is CheckResult.SAT
        assert solver.model()["x"] >= 10
        solver.pop()
        assert solver.check() is CheckResult.SAT

    def test_pop_without_push_raises(self, mgr):
        solver = _incremental(mgr)
        with pytest.raises(RuntimeError):
            solver.pop()

    def test_assertions_reflect_frames(self, mgr):
        x = mgr.bool_var("p")
        y = mgr.bool_var("q")
        solver = _incremental(mgr)
        solver.add(x)
        solver.push()
        solver.add(y)
        assert solver.assertions() == [x, y]
        solver.pop()
        assert solver.assertions() == [x]


# -- budget exhaustion leaves the solver reusable ----------------------------------


def _hard_term(mgr):
    """Factor a prime with 12-bit factors: UNSAT, but only after real search.

    The factors are zero-extended before multiplying, so the product cannot
    wrap — 15485863 is prime, hence no model exists, and the CDCL loop has
    to refute a full 12×12 multiplier circuit to prove it.
    """
    a = mgr.bv_var("hard_a", 12)
    b = mgr.bv_var("hard_b", 12)
    product = mgr.bvmul(mgr.zext(a, 12), mgr.zext(b, 12))
    return mgr.and_(
        mgr.eq(product, mgr.bv_const(15_485_863, 24)),
        mgr.bvugt(a, mgr.bv_const(1, 12)),
        mgr.bvugt(b, mgr.bv_const(1, 12)))


class TestBudgetExhaustion:
    def test_unknown_mid_run_keeps_solver_reusable(self, mgr):
        solver = Solver(mgr, timeout=None, max_conflicts=1, incremental=True)
        x = mgr.bv_var("x", WIDTH)
        solver.add(mgr.bvult(x, mgr.bv_const(100, WIDTH)))

        solver.push()
        solver.add(_hard_term(mgr))
        assert solver.check() is CheckResult.UNKNOWN
        solver.pop()

        # The starved query neither poisoned the clause database nor the
        # budget of later queries: an easy follow-up still gets answered.
        solver.max_conflicts = 200_000
        assert solver.check(
            assumptions=[mgr.eq(x, mgr.bv_const(7, WIDTH))]) is CheckResult.SAT
        assert solver.model()["x"] == 7

    def test_conflict_budget_is_per_call(self, mgr):
        # The cumulative conflict counter must not starve later calls: after
        # a starved UNKNOWN, an easy query on the same solver still gets its
        # own full budget.
        solver = Solver(mgr, timeout=None, max_conflicts=200, incremental=True)
        solver.push()
        solver.add(_hard_term(mgr))
        assert solver.check() is CheckResult.UNKNOWN
        assert solver.stats.conflicts >= 200
        solver.pop()
        x = mgr.bv_var("x", WIDTH)
        assert solver.check(
            assumptions=[mgr.eq(x, mgr.bv_const(9, WIDTH))]) is CheckResult.SAT

    def test_timeout_zero_returns_unknown_then_recovers(self, mgr):
        solver = Solver(mgr, timeout=0.0, incremental=True)
        solver.push()
        solver.add(_hard_term(mgr))
        assert solver.check() is CheckResult.UNKNOWN   # deadline already passed
        # The interrupted run left the solver reusable: re-asking under a
        # real budget decides the same query (the instance is UNSAT) ...
        assert solver.check(timeout=60.0) is CheckResult.UNSAT
        solver.pop()
        # ... and popping the frame restores satisfiability.
        assert solver.check(timeout=60.0) is CheckResult.SAT


# -- incremental encodings are shared -----------------------------------------------


def test_blast_cache_shares_subterms_across_queries(mgr):
    x = mgr.bv_var("x", 16)
    y = mgr.bv_var("y", 16)
    shared = mgr.bvmul(x, y)  # expensive circuit, common to both queries
    solver = _incremental(mgr)
    # 39203 = 197 * 199: satisfiable, but no concrete-assignment guess hits
    # it, so the query has to bit-blast the multiplier.
    solver.add(mgr.eq(shared, mgr.bv_const(39_203, 16)))
    assert solver.check(
        assumptions=[mgr.bvugt(x, mgr.bv_const(1, 16))]) is CheckResult.SAT
    clauses_after_first = solver.stats.blasted_clauses
    assert clauses_after_first > 0
    assert solver.check(
        assumptions=[mgr.bvult(x, mgr.bv_const(40_000, 16)),
                     mgr.bvugt(y, mgr.bv_const(1, 16))]) is CheckResult.SAT
    second_delta = solver.stats.blasted_clauses - clauses_after_first
    # The multiplier was encoded once; the second query only adds its two
    # comparisons.
    assert second_delta < clauses_after_first / 2
    assert solver.stats.blast_hits > 0


# -- determinism: incremental == scratch on the snippet corpus ----------------------


def test_incremental_matches_scratch_on_snippet_corpus():
    """Acceptance: identical verdicts, query counts, and diagnostics."""
    snippets = SNIPPETS + STABLE_SNIPPETS
    for snippet in snippets:
        source = snippet.render("determinism")
        reports = {}
        for incremental in (True, False):
            config = CheckerConfig(solver_timeout=60.0, incremental=incremental)
            reports[incremental] = check_source(source, config=config)
        incr, scratch = reports[True], reports[False]
        assert report_signature(incr) == report_signature(scratch), snippet.name
        assert incr.queries == scratch.queries, snippet.name
        assert incr.timeouts == scratch.timeouts == 0, snippet.name


def test_incremental_stats_reach_function_report():
    config = CheckerConfig(solver_timeout=60.0)
    report = check_source(SNIPPETS[0].render("stats"), config=config)
    fn = report.functions[0]
    assert fn.contexts > 0
    assert fn.queries > 0
    # Some queries are decided by simplification; the ones that reached the
    # CDCL loop are accounted with their clause volume.
    assert fn.sat_calls >= 0
    if fn.sat_calls:
        assert fn.blasted_clauses > 0
    assert report.contexts == sum(f.contexts for f in report.functions)


# -- failure attribution and frame discipline --------------------------------------


class TestFailureAttribution:
    def test_inconsistent_frames_report_no_failed_assumptions(self, mgr):
        # The asserted frames alone are UNSAT; the per-call assumption must
        # not be blamed (the documented empty-list contract).
        x = mgr.bv_var("x", WIDTH)
        y = mgr.bv_var("y", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(3, WIDTH)))
        solver.add(mgr.bvugt(x, mgr.bv_const(5, WIDTH)))
        failures_before = solver.stats.assumption_failures
        result = solver.check(assumptions=[mgr.bvugt(y, mgr.bv_const(0, WIDTH))])
        assert result is CheckResult.UNSAT
        assert solver.failed_assumptions() == []
        assert solver.stats.assumption_failures == failures_before

    def test_failing_assumption_still_identified(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        solver.add(mgr.bvult(x, mgr.bv_const(3, WIDTH)))
        bad = mgr.bvugt(x, mgr.bv_const(5, WIDTH))
        assert solver.check(assumptions=[bad]) is CheckResult.UNSAT
        assert solver.failed_assumptions() == [bad]


class TestBudgetExhaustionMidRace:
    """Portfolio races where members run out of budget (docs/SOLVER.md)."""

    def _exhausted(self, name="exhausted"):
        from repro.solver.backends import BackendAnswer, SolverBackend
        from repro.solver.sat import SatResult

        class Exhausted(SolverBackend):
            """A backend whose budget is always spent: every call UNKNOWN."""

            def __init__(self):
                self.name = name
                self.calls = 0

            def ensure_vars(self, num_vars):
                pass

            def add_clauses(self, clauses):
                pass

            def solve(self, assumptions=(), max_conflicts=None, timeout=None):
                self.calls += 1
                return BackendAnswer(result=SatResult.UNKNOWN)

        return Exhausted()

    def test_definitive_answer_survives_a_starved_member(self, mgr):
        from repro.solver.backends import BuiltinBackend, PortfolioSolver
        from repro.solver.bitblast import BitBlaster
        from repro.solver.cnf import CnfBuilder
        from repro.solver.sat import SatResult, SatSolver

        sat = SatSolver()
        cnf = CnfBuilder(sat, record=True)
        BitBlaster(cnf).assert_term(_hard_term(mgr))

        starved = self._exhausted()
        race = PortfolioSolver([starved, BuiltinBackend(sat=sat)])
        race.feed(sat.num_vars, cnf.clauses)
        answer = race.solve(timeout=60.0)
        # One member exhausted its budget; the other's definitive answer is
        # still returned and credited.
        assert answer.result is SatResult.UNSAT
        assert answer.winner == "builtin"
        assert answer.verdicts["exhausted"] == "unknown"
        assert starved.calls == 1

    def test_unknown_only_when_every_member_exhausts(self, mgr):
        from repro.solver.backends import PortfolioSolver
        from repro.solver.sat import SatResult

        race = PortfolioSolver([self._exhausted("a"), self._exhausted("b")])
        answer = race.solve()
        assert answer.result is SatResult.UNKNOWN
        assert answer.winner is None

    def test_starved_builtin_race_stays_reusable(self, mgr):
        # Through the facade: a conflict budget of 1 starves the builtin
        # backend mid-race (UNKNOWN), then a raised budget decides the same
        # persistent instance — mirroring the legacy reuse guarantee.
        solver = Solver(mgr, timeout=None, max_conflicts=1, incremental=True,
                        backend="builtin")
        solver.push()
        solver.add(_hard_term(mgr))
        assert solver.check() is CheckResult.UNKNOWN
        assert solver.stats.backend_wins == {}      # nobody won that race
        solver.max_conflicts = 200_000
        assert solver.check(timeout=60.0) is CheckResult.UNSAT
        assert solver.stats.backend_wins == {"builtin": 1}
        solver.pop()
        assert solver.check(timeout=60.0) is CheckResult.SAT


class TestFrameDiscipline:
    def test_non_lifo_pop_raises(self, mgr):
        x = mgr.bv_var("x", WIDTH)
        solver = _incremental(mgr)
        first = solver.push()
        solver.add(mgr.bvult(x, mgr.bv_const(10, WIDTH)))
        second = solver.push()
        with pytest.raises(RuntimeError, match="non-LIFO"):
            solver.pop(first)
        solver.pop(second)
        solver.pop(first)

    def test_non_lifo_context_close_raises(self):
        from repro.core.encode import FunctionEncoder
        from repro.core.queries import QueryEngine
        from repro.api import compile_source

        module = compile_source("int f(int x) { return x + 1; }")
        encoder = FunctionEncoder(next(iter(module.defined_functions())))
        engine = QueryEngine(encoder, timeout=20.0)
        mgr = encoder.manager
        x = mgr.bv_var("v", WIDTH)
        outer = engine.context([mgr.bvult(x, mgr.bv_const(10, WIDTH))])
        inner = engine.context([mgr.bvult(x, mgr.bv_const(5, WIDTH))])
        assert outer.is_unsat() is False
        assert inner.is_unsat() is False
        with pytest.raises(RuntimeError, match="non-LIFO"):
            outer.close()
        inner.close()
        outer.close()
        # The failed early close must not have retired the outer context:
        # after the ordered closes its base assertion (v < 10) is gone, so
        # v > 20 is satisfiable again on the shared solver.
        with engine.context([mgr.bvugt(x, mgr.bv_const(20, WIDTH))]) as fresh:
            assert fresh.is_unsat() is False
