"""Tests for the operational observability layer (repro.obs.ops,
repro.obs.promexport, repro.obs.flightrec, repro serve wiring,
docs/OBSERVABILITY.md "Operating the daemon")."""

import glob
import json
import math
import os

import pytest

from repro.core.checker import CheckerConfig
from repro.engine.workunit import WorkUnit, check_work_unit
from repro.obs.flightrec import FlightRecorder, validate_flight_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.ops import (
    EventLog,
    Ops,
    SlowQueryRecorder,
    activate_slow_queries,
    note_query,
    restore_slow_queries,
    validate_log_record,
)
from repro.obs.promexport import (
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    validate_prometheus_text,
    write_metrics_file,
)
from repro.serve.pool import CRASH_META_KEY, TEST_HOOKS_ENV, WarmWorkerPool
from repro.serve.top import render_dashboard

UNSTABLE = "int f(int x) { if (x + 1 > x) return 1; return 0; }"


# -- the structured event log ---------------------------------------------------------


def test_event_log_record_schema(tmp_path):
    log = EventLog(path=str(tmp_path / "events.log"), level="debug")
    record = log.emit("info", "server", "listening", socket="x.sock",
                      workers=2)
    log.close()
    validate_log_record(record)
    assert record["type"] == "log"
    assert record["level"] == "info"
    assert record["component"] == "server"
    assert record["event"] == "listening"
    assert record["fields"] == {"socket": "x.sock", "workers": 2}
    lines = (tmp_path / "events.log").read_text().splitlines()
    assert [json.loads(line) for line in lines] == [record]


def test_event_log_level_filter(tmp_path):
    path = tmp_path / "events.log"
    log = EventLog(path=str(path), level="warn")
    log.emit("debug", "c", "dropped")
    log.emit("info", "c", "dropped-too")
    log.emit("warn", "c", "kept")
    log.emit("error", "c", "kept-too")
    log.close()
    events = [json.loads(line)["event"] for line in
              path.read_text().splitlines()]
    assert events == ["kept", "kept-too"]


def test_event_log_rejects_unknown_level(tmp_path):
    with pytest.raises(ValueError):
        EventLog(path=str(tmp_path / "x.log"), level="verbose")
    log = EventLog()
    with pytest.raises(ValueError):
        log.emit("fatal", "c", "e")


def test_event_log_fields_are_json_safe(tmp_path):
    log = EventLog(path=str(tmp_path / "events.log"), level="debug")
    record = log.emit("info", "c", "e", obj=object(), nested={"k": (1, 2)},
                      none=None)
    log.close()
    json.dumps(record)                        # must serialize as-is
    assert record["fields"]["nested"] == {"k": [1, 2]}
    assert record["fields"]["none"] is None
    assert isinstance(record["fields"]["obj"], str)


def test_event_log_size_rotation(tmp_path):
    path = tmp_path / "events.log"
    log = EventLog(path=str(path), level="debug", max_bytes=1024, backups=2)
    for index in range(200):
        log.emit("info", "component", "event", index=index,
                 padding="x" * 64)
    log.close()
    assert log.rotations >= 2
    assert path.exists()
    assert (tmp_path / "events.log.1").exists()
    assert (tmp_path / "events.log.2").exists()
    assert not (tmp_path / "events.log.3").exists()    # backups capped
    # Every surviving file is valid JSONL of schema'd records.
    for name in ("events.log", "events.log.1", "events.log.2"):
        for line in (tmp_path / name).read_text().splitlines():
            validate_log_record(json.loads(line))


def test_validate_log_record_rejects_malformed():
    good = EventLog().build("info", "c", "e")
    for corruption in (
            {**good, "type": "span"},
            {**good, "ts": "yesterday"},
            {**good, "level": "noisy"},
            {**good, "component": ""},
            {**good, "fields": []},
            "not a dict"):
        with pytest.raises(ValueError):
            validate_log_record(corruption)


# -- Prometheus export ----------------------------------------------------------------


def test_sanitize_metric_name():
    assert sanitize_metric_name("serve.queue_depth") == "serve_queue_depth"
    assert sanitize_metric_name("a-b c") == "a_b_c"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"


def test_prometheus_round_trip_live_registry():
    """Every metric in a live registry snapshot survives the text format."""
    registry = MetricsRegistry()
    registry.inc("serve.units_completed", 7)
    registry.inc("engine.cache-hits", 3)      # name needs sanitizing
    registry.set_gauge("serve.queue_depth", 12)
    registry.set_gauge("serve.load", 0.75)
    for value in (0.0002, 0.02, 0.02, 0.4, 7.0, 120.0):
        registry.observe("serve.unit_latency", value)
    snapshot = registry.snapshot()

    text = render_prometheus(snapshot)
    families = validate_prometheus_text(text)

    assert families["serve_units_completed"]["type"] == "counter"
    assert families["serve_units_completed"]["value"] == 7
    assert families["engine_cache_hits"]["value"] == 3
    assert families["serve_queue_depth"]["type"] == "gauge"
    assert families["serve_queue_depth"]["value"] == 12
    assert families["serve_load"]["value"] == 0.75

    histogram = families["serve_unit_latency"]
    assert histogram["type"] == "histogram"
    assert histogram["count"] == 6
    assert histogram["sum"] == pytest.approx(snapshot["histograms"]
                                             ["serve.unit_latency"]["sum"])
    buckets = histogram["buckets"]
    assert buckets[-1][0] == math.inf
    assert buckets[-1][1] == 6                # +Inf bucket is the total
    cumulative = [count for _le, count in buckets]
    assert cumulative == sorted(cumulative)   # monotone non-decreasing
    # The 120.0 observation lands only in +Inf (beyond the last bound).
    assert buckets[-2][1] == 5

    # Every family carries its # HELP and # TYPE lines.
    for name, family in families.items():
        assert f"# TYPE {name} {family['type']}" in text
        assert f"# HELP {name} " in text


def test_prometheus_rejects_corrupt_text():
    registry = MetricsRegistry()
    registry.observe("lat", 0.02)
    text = render_prometheus(registry.snapshot())
    validate_prometheus_text(text)
    with pytest.raises(ValueError):           # sample without a TYPE line
        validate_prometheus_text("orphan 1\n")
    with pytest.raises(ValueError):           # non-cumulative buckets
        validate_prometheus_text(
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n")
    with pytest.raises(ValueError):           # missing +Inf bucket
        validate_prometheus_text(
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\nh_sum 1\nh_count 1\n')
    with pytest.raises(ValueError):           # garbage sample line
        validate_prometheus_text("# HELP a x\n# TYPE a counter\na one\n")


def test_prometheus_name_collision_is_an_error():
    with pytest.raises(ValueError):
        render_prometheus({"counters": {"a.b": 1, "a_b": 2}})


def test_write_metrics_file_atomic(tmp_path):
    registry = MetricsRegistry()
    registry.inc("writes", 1)
    path = tmp_path / "metrics.prom"
    write_metrics_file(str(path), registry.snapshot())
    registry.inc("writes", 1)
    write_metrics_file(str(path), registry.snapshot())
    families = validate_prometheus_text(path.read_text())
    assert families["writes"]["value"] == 2
    assert not list(tmp_path.glob("*.tmp.*"))  # temp files always renamed


# -- the flight recorder --------------------------------------------------------------


def test_flight_recorder_ring_is_bounded():
    flight = FlightRecorder(event_capacity=4, span_capacity=3)
    log = EventLog()
    for index in range(10):
        flight.record_event(log.build("info", "c", f"e{index}"))
        flight.record_span(f"s{index}", 0.01)
    assert [e["event"] for e in flight.recent_events(99)] == \
        ["e6", "e7", "e8", "e9"]
    assert [s["name"] for s in flight.recent_spans(99)] == ["s7", "s8", "s9"]
    assert [e["event"] for e in flight.recent_events(2)] == ["e8", "e9"]


def test_flight_dump_schema_and_sequencing(tmp_path):
    flight = FlightRecorder()
    log = EventLog()
    flight.record_event(log.build("error", "pool", "worker-died", worker=3))
    flight.record_span("unit:job-1:0", 0.25, worker=3)
    first = flight.dump("pool.worker-died", str(tmp_path),
                        detail={"worker": 3},
                        metrics={"counters": {"serve.units_completed": 1}},
                        config={"incremental": True})
    second = flight.dump("SIGQUIT", str(tmp_path))
    assert os.path.basename(first) == "repro-flight-0001-pool.worker-died.json"
    assert os.path.basename(second) == "repro-flight-0002-SIGQUIT.json"
    assert flight.dumps_written == 2

    document = json.loads(open(first).read())
    validate_flight_record(document)
    assert document["reason"] == "pool.worker-died"
    assert document["detail"] == {"worker": 3}
    assert document["events"][0]["event"] == "worker-died"
    assert document["spans"][0]["name"] == "unit:job-1:0"
    assert document["metrics"]["counters"]["serve.units_completed"] == 1
    assert document["config"]["incremental"] is True


def test_validate_flight_record_rejects_malformed(tmp_path):
    flight = FlightRecorder()
    path = flight.dump("reason", str(tmp_path))
    good = json.loads(open(path).read())
    validate_flight_record(good)
    for corruption in (
            {**good, "type": "log"},
            {**good, "seq": 0},
            {**good, "reason": ""},
            {**good, "events": [{"bogus": True}]},
            {**good, "spans": [{"name": "x"}]},
            []):
        with pytest.raises(ValueError):
            validate_flight_record(corruption)


def test_ops_routes_all_levels_to_flight_ring(tmp_path):
    """The log filters by level; the flight ring deliberately does not."""
    ops = Ops(log=EventLog(path=str(tmp_path / "ops.log"), level="error"),
              flight_dir=str(tmp_path))
    ops.emit("debug", "pool", "task-started", task="t0")
    ops.emit("error", "pool", "worker-died", worker=1)
    ops.close()
    assert [e["event"] for e in ops.recent_events()] == \
        ["task-started", "worker-died"]
    logged = [json.loads(line)["event"] for line in
              (tmp_path / "ops.log").read_text().splitlines()]
    assert logged == ["worker-died"]          # level filter applied on disk


def test_ops_emit_dump_writes_flight_record(tmp_path):
    ops = Ops(flight_dir=str(tmp_path),
              metrics_fn=lambda: {"counters": {"c": 1}},
              config_fn=lambda: {"workers": 2})
    ops.emit("debug", "pool", "task-started", task="job-1:0")
    ops.emit("error", "pool", "worker-died", dump=True, worker=0)
    dumps = glob.glob(str(tmp_path / "repro-flight-*.json"))
    assert len(dumps) == 1
    document = json.loads(open(dumps[0]).read())
    validate_flight_record(document)
    assert document["reason"] == "pool.worker-died"
    assert document["metrics"] == {"counters": {"c": 1}}
    assert document["config"] == {"workers": 2}
    # The debug-level trail preceding the death is inside the dump.
    assert [e["event"] for e in document["events"]] == \
        ["task-started", "worker-died"]


# -- the slow-query recorder ----------------------------------------------------------


def test_slow_query_recorder_threshold_and_capacity():
    recorder = SlowQueryRecorder(threshold_ms=10.0, capacity=2)
    recorder.note("k1", True, 0.005, "builtin")      # 5ms: under threshold
    recorder.note("k2", False, 0.02, "builtin")
    recorder.note("k3", None, 0.5, "pysat")
    recorder.note("k4", True, 0.9, "builtin")        # over capacity
    assert [r["key"] for r in recorder.records] == ["k2", "k3"]
    assert recorder.records[0]["duration_ms"] == 20.0
    assert recorder.records[1]["verdict"] == "unknown"
    assert recorder.records[1]["backend"] == "pysat"
    assert recorder.dropped == 1


def test_note_query_is_a_noop_when_inactive():
    note_query("key", True, 10.0, "builtin")         # must not raise
    recorder = SlowQueryRecorder(threshold_ms=0.0)
    previous = activate_slow_queries(recorder)
    try:
        note_query("key", True, 0.001, "builtin")
    finally:
        restore_slow_queries(previous)
    note_query("key2", True, 10.0, "builtin")        # inactive again
    assert [r["key"] for r in recorder.records] == ["key"]


def test_check_work_unit_collects_slow_queries():
    config = CheckerConfig(slow_query_ms=0.0)        # every query is "slow"
    result = check_work_unit(WorkUnit(name="u.c", source=UNSTABLE), config)
    assert result.ok
    assert result.slow_queries
    for record in result.slow_queries:
        assert set(record) == {"key", "backend", "verdict", "duration_ms"}
        assert record["backend"] == "builtin"
        assert record["duration_ms"] >= 0.0
    # Out-of-band by construction: nothing leaked into meta / the record.
    assert "slow_queries" not in result.meta

    baseline = check_work_unit(WorkUnit(name="u.c", source=UNSTABLE),
                               CheckerConfig())
    assert baseline.slow_queries == []


# -- worker death produces a post-mortem ----------------------------------------------


def test_worker_kill_dumps_flight_record_with_event_trail(tmp_path,
                                                          monkeypatch):
    """Killing a warm worker mid-unit writes a schema-valid dump whose
    event trail covers the dying unit: spawn → task-started → worker-died
    with the unit in the orphan list (the ISSUE's 2am question)."""
    monkeypatch.setenv(TEST_HOOKS_ENV, "1")
    ops = Ops(log=EventLog(path=str(tmp_path / "pool.log"), level="debug"),
              flight_dir=str(tmp_path))
    pool = WarmWorkerPool(workers=2, ops=ops)
    try:
        pool.submit("boom", WorkUnit(name="boom", source=UNSTABLE,
                                     meta={CRASH_META_KEY: True}))
        pool.submit("ok", WorkUnit(name="ok", source=UNSTABLE))
        events = pool.drain(timeout=120.0)
        assert sorted(e.task_id for e in events if e.kind == "done") == \
            ["boom", "ok"]
        assert pool.deaths == 1
    finally:
        pool.close(drain=False)

    dumps = glob.glob(str(tmp_path / "repro-flight-*.json"))
    assert len(dumps) == 1
    document = json.loads(open(dumps[0]).read())
    validate_flight_record(document)
    assert document["reason"] == "pool.worker-died"
    assert "boom" in document["detail"]["orphaned"]

    trail = [(e["event"], e["fields"]) for e in document["events"]]
    started = [fields for event, fields in trail if event == "task-started"]
    assert any(fields["task"] == "boom" for fields in started)
    died = [fields for event, fields in trail if event == "worker-died"]
    assert len(died) == 1 and "boom" in died[0]["orphaned"]
    # The dying worker's spawn is in the trail too.
    spawned = [fields for event, fields in trail
               if event == "worker-spawned"]
    assert any(fields["worker"] == died[0]["worker"] for fields in spawned)

    # The retry made it into the log after the dump was cut.
    logged = [json.loads(line) for line in
              (tmp_path / "pool.log").read_text().splitlines()]
    retried = [r for r in logged if r["event"] == "task-retried"]
    assert [r["fields"]["task"] for r in retried] == ["boom"]
    respawns = [r for r in logged if r["event"] == "worker-spawned"
                and r["fields"]["restarts"] > 0]
    assert len(respawns) == 1                 # replacement inherits the slot


# -- repro top ------------------------------------------------------------------------


def _sample_status():
    return {
        "type": "status", "draining": False, "queue_depth": 3,
        "in_flight": 2, "active_jobs": 1, "clients": 1, "workers": 2,
        "worker_deaths": 1, "uptime_units": 41, "cache_entries": 120,
        "workers_detail": [
            {"worker": 0, "pid": 100, "state": "busy", "units_done": 21,
             "restarts": 0},
            {"worker": 3, "pid": 104, "state": "idle", "units_done": 20,
             "restarts": 1},
        ],
        "recent_events": [
            {"type": "log", "ts": 1.0, "level": "error", "component": "pool",
             "event": "worker-died", "fields": {"worker": 1}},
        ],
        "metrics": {
            "counters": {"serve.units_completed": 41, "serve.queries": 50,
                         "serve.warm_hits": 30, "serve.units_retried": 1,
                         "serve.units_failed": 0, "serve.slow_queries": 2},
            "gauges": {"serve.queue_depth": 3},
            "histograms": {"serve.unit_latency": {
                "buckets": [0.01, 0.1, 1.0], "counts": [10, 25, 6, 0],
                "count": 41, "sum": 3.2, "min": 0.004, "max": 0.9}},
        },
    }


def test_render_dashboard_is_pure_and_complete():
    status = _sample_status()
    text = render_dashboard(status)
    assert render_dashboard(status) == text   # pure: same input, same frame
    assert "running" in text
    assert "3 queued" in text and "2 in-flight" in text
    assert "41 completed" in text
    assert "60.0%" in text                    # 30 warm hits / 50 queries
    assert "pid 100" in text and "busy" in text
    assert "1 restart(s)" in text
    assert "worker-died" in text
    assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
    assert "mean 78.0ms" in text              # 3.2s / 41 units


def test_render_dashboard_handles_empty_daemon():
    text = render_dashboard({"type": "status", "metrics": {}})
    assert "running" in text
    assert "warm-hit rate n/a" in text


def test_top_once_json_against_live_daemon(tmp_path, capsys):
    from repro.__main__ import top_cli_main
    from repro.serve import ServeClient, ServeConfig, ServeServer

    socket_path = str(tmp_path / "serve.sock")
    server = ServeServer(ServeConfig(socket_path=socket_path, workers=1))
    server.start()
    try:
        with ServeClient(socket_path, name="filler") as client:
            client.check([("a.c", UNSTABLE)])
        assert top_cli_main(["--socket", socket_path, "--once",
                             "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["type"] == "status"
        assert status["uptime_units"] == 1
        assert status["workers_detail"][0]["units_done"] == 1
        assert top_cli_main(["--socket", socket_path, "--once"]) == 0
        assert "1 completed" in capsys.readouterr().out
    finally:
        server.close()


def test_top_reports_unreachable_daemon(tmp_path, capsys):
    from repro.__main__ import top_cli_main

    missing = str(tmp_path / "nowhere.sock")
    assert top_cli_main(["--socket", missing, "--once"]) == 1
    assert "cannot reach daemon" in capsys.readouterr().err
