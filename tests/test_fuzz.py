"""Tests for the generative fuzzing subsystem (repro.fuzz)."""

import json
import random

import pytest

from repro.api import check_source, compile_source
from repro.core.ubconditions import UBKind
from repro.corpus.snippets import FUZZ_SNIPPETS, register_snippet, \
    snippet_by_name
from repro.fuzz import (
    ALL_SCENARIOS,
    FuzzConfig,
    ProgramGenerator,
    build_ir_module,
    case_to_snippet,
    ddmin,
    reduce_module,
    reduce_source,
    run_fuzz_campaign,
)
from repro.ir.verifier import verify_module


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_same_programs(self):
        first = ProgramGenerator(random.Random(7))
        second = ProgramGenerator(random.Random(7))
        for index in range(40):
            a = first.generate(index)
            b = second.generate(index)
            assert (a.scenario, a.mode, a.source, a.ir_spec) == \
                (b.scenario, b.mode, b.source, b.ir_spec)

    def test_different_seeds_differ(self):
        a = [ProgramGenerator(random.Random(1)).generate(i) for i in range(20)]
        b = [ProgramGenerator(random.Random(2)).generate(i) for i in range(20)]
        assert [(p.scenario, p.source) for p in a] != \
            [(p.scenario, p.source) for p in b]

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_every_scenario_produces_checkable_programs(self, scenario):
        generator = ProgramGenerator(random.Random(3), [scenario])
        for index in range(4):
            program = generator.generate(index, scenario)
            assert program.scenario == scenario
            assert program.tag == f"s{index}"
            if program.mode == "minic":
                assert program.tag in program.source
                assert "{S}" in program.template
                module = compile_source(program.source)
            else:
                module = program.build_module()
            assert not verify_module(module, raise_on_error=False)

    def test_ir_modules_rebuild_identically(self):
        generator = ProgramGenerator(random.Random(5), ["ir_overflow_chain"])
        program = generator.generate(0, "ir_overflow_chain")
        from repro.ir.printer import print_module

        assert print_module(program.build_module()) == \
            print_module(program.build_module())

    def test_build_ir_module_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            build_ir_module({"scenario": "nope"})

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            ProgramGenerator(random.Random(0), ["no_such_scenario"])


# ---------------------------------------------------------------------------
# ddmin and the reducer
# ---------------------------------------------------------------------------


class TestDdmin:
    def test_finds_single_element(self):
        result = ddmin(list(range(64)), lambda kept: 17 in kept)
        assert result == [17]

    def test_keeps_required_pair(self):
        result = ddmin(list(range(32)),
                       lambda kept: 3 in kept and 29 in kept)
        assert result == [3, 29]

    def test_preserves_order(self):
        result = ddmin(list(range(16)),
                       lambda kept: {2, 5, 11} <= set(kept))
        assert result == [2, 5, 11]

    def test_singleton_input(self):
        assert ddmin([4], lambda kept: True) == [4]


UNSTABLE_SOURCE = """
int scratch_0(int a) {
    int unused = a * 2;
    int also_unused = unused + 3;
    return unused;
}
int guard_s9(char *buf, char *end, unsigned int len) {
    int x = 5;
    x = x + 1;
    if (buf + len >= end)
        return -1;
    if (buf + len < buf)
        return -1;
    return x;
}
"""


class TestReduceSource:
    def test_reduces_and_preserves_verdict(self):
        case = reduce_source(UNSTABLE_SOURCE)
        assert case is not None
        assert case.mode == "minic"
        assert UBKind.POINTER_OVERFLOW in case.kinds
        assert case.elements_after < case.elements_before
        # The unrelated helper function must be gone entirely.
        assert "scratch_0" not in case.source
        assert "buf + len < buf" in case.source
        report = check_source(case.source)
        assert any(UBKind.POINTER_OVERFLOW in bug.ub_kinds
                   for bug in report.bugs)

    def test_idempotent(self):
        case = reduce_source(UNSTABLE_SOURCE)
        again = reduce_source(case.source)
        assert again is not None
        assert again.source == case.source
        assert again.removed == 0

    def test_every_accepted_intermediate_parses_and_verifies(self):
        case = reduce_source(UNSTABLE_SOURCE)
        assert case.trajectory
        for candidate in case.trajectory:
            module = compile_source(candidate)
            assert not verify_module(module, raise_on_error=False)

    def test_stable_source_returns_none(self):
        assert reduce_source("""
            int fine_s0(int a, int b) {
                if (b == 0) return 0;
                return a / b;
            }
        """) is None

    def test_kind_filter_must_match(self):
        assert reduce_source(UNSTABLE_SOURCE,
                             kinds=[UBKind.DIV_BY_ZERO]) is None

    def test_uncompilable_source_returns_none(self):
        assert reduce_source("int broken_s0( {") is None


class TestReduceModule:
    def _build(self):
        spec = {"scenario": "ir_overflow_chain", "width": 32,
                "consts": [7, 100], "guard_first": False, "tag": "s0"}
        return build_ir_module(spec)

    def test_reduces_ir_and_preserves_verdict(self):
        case = reduce_module(self._build)
        assert case is not None
        assert case.mode == "ir"
        assert UBKind.SIGNED_OVERFLOW in case.kinds
        assert case.elements_after <= case.elements_before

    def test_intermediates_verify(self):
        case = reduce_module(self._build)
        # Trajectory entries were printed from verifier-clean candidates by
        # construction; pin the invariant via the recorded count instead.
        assert case.checker_runs >= 1

    def test_stable_module_returns_none(self):
        spec = {"scenario": "ir_overflow_chain", "width": 32,
                "consts": [7], "guard_first": True, "tag": "s0"}
        assert reduce_module(lambda: build_ir_module(spec)) is None


class TestSnippetRegistration:
    def test_case_round_trips_into_the_corpus(self):
        case = reduce_source(UNSTABLE_SOURCE)
        snippet = case_to_snippet(case, scenario="pointer_guard_order",
                                  tag="s9", name="fuzz_test_reg_0")
        assert "{S}" in snippet.source_template
        assert snippet.is_unstable
        rendered = snippet.render("42")
        report = check_source(rendered)
        assert any(UBKind.POINTER_OVERFLOW in bug.ub_kinds
                   for bug in report.bugs)

        registered = register_snippet(snippet)
        try:
            assert snippet_by_name("fuzz_test_reg_0") is registered
            # Idempotent per name.
            assert register_snippet(snippet) is registered
        finally:
            FUZZ_SNIPPETS.remove(registered)
            from repro.corpus import snippets as snippets_module

            del snippets_module._ALL_BY_NAME["fuzz_test_reg_0"]

    def test_name_reuse_with_different_content_rejected(self):
        case = reduce_source(UNSTABLE_SOURCE)
        first = case_to_snippet(case, scenario="pointer_guard_order",
                                tag="s9", name="fuzz_test_conflict_0")
        registered = register_snippet(first)
        try:
            import dataclasses

            other = dataclasses.replace(
                first, source_template=first.source_template + "\n")
            with pytest.raises(ValueError):
                register_snippet(other)
        finally:
            FUZZ_SNIPPETS.remove(registered)
            from repro.corpus import snippets as snippets_module

            del snippets_module._ALL_BY_NAME["fuzz_test_conflict_0"]

    def test_hand_written_names_are_protected(self):
        case = reduce_source(UNSTABLE_SOURCE)
        snippet = case_to_snippet(case, scenario="x", tag="s9",
                                  name="fig1_pointer_overflow_check")
        with pytest.raises(ValueError):
            register_snippet(snippet)

    def test_ir_cases_cannot_join_the_corpus(self):
        spec = {"scenario": "ir_overflow_chain", "width": 32,
                "consts": [7], "guard_first": False, "tag": "s0"}
        case = reduce_module(lambda: build_ir_module(spec))
        with pytest.raises(ValueError):
            case_to_snippet(case, scenario="ir", tag="s0", name="nope")


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_same_seed_byte_identical_jsonl(self, tmp_path):
        """Satellite regression test: one rng end to end, stable output."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            run_fuzz_campaign(FuzzConfig(seed=21, budget=8, reduce=True,
                                         out=str(path)))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_campaign_counters_and_records(self):
        result = run_fuzz_campaign(FuzzConfig(seed=4, budget=12, reduce=True))
        stats = result.stats
        assert stats.programs == 12
        assert len(result.records) == 12
        assert stats.failed_units == 0
        assert stats.expectation_mismatches == 0
        assert stats.miscompiles == 0
        assert stats.minic_programs + stats.ir_programs == 12
        assert stats.engine.units == 12
        for record in result.records:
            assert record["type"] == "fuzz-program"
            assert record["scenario"] in ALL_SCENARIOS
            if record["flagged"]:
                assert record["reduced"] is not None
                assert record["diagnostics"]

    def test_flagged_records_reference_reduced_shapes(self):
        result = run_fuzz_campaign(FuzzConfig(seed=4, budget=12, reduce=True))
        assert result.reduced
        for case in result.reduced.values():
            assert case.elements_after <= case.elements_before

    def test_register_snippets_lands_in_corpus(self):
        result = run_fuzz_campaign(FuzzConfig(seed=4, budget=12, reduce=True,
                                              register_snippets=True))
        assert result.snippets
        try:
            for snippet in result.snippets:
                assert snippet_by_name(snippet.name) is snippet
                assert snippet in FUZZ_SNIPPETS
        finally:
            from repro.corpus import snippets as snippets_module

            for snippet in result.snippets:
                FUZZ_SNIPPETS.remove(snippet)
                del snippets_module._ALL_BY_NAME[snippet.name]

    def test_scenario_filter(self):
        result = run_fuzz_campaign(FuzzConfig(
            seed=1, budget=6, scenarios=("division_order",),
            differential=False))
        assert set(result.stats.by_scenario) == {"division_order"}

    def test_summary_line_closes_the_stream(self, tmp_path):
        path = tmp_path / "out.jsonl"
        result = run_fuzz_campaign(FuzzConfig(seed=2, budget=5,
                                              out=str(path)))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 6
        summary = json.loads(lines[-1])
        assert summary["type"] == "fuzz-run"
        assert summary["programs"] == 5
        assert summary == dict(summary, **result.stats.as_dict(),
                               type="fuzz-run")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz_campaign(FuzzConfig(budget=0))
        with pytest.raises(ValueError):
            run_fuzz_campaign(FuzzConfig(budget=4, batch_size=0))

    def test_workers_reproduce_sequential_results(self, tmp_path):
        sequential = tmp_path / "seq.jsonl"
        parallel = tmp_path / "par.jsonl"
        run_fuzz_campaign(FuzzConfig(seed=9, budget=8, out=str(sequential)))
        run_fuzz_campaign(FuzzConfig(seed=9, budget=8, workers=2,
                                     out=str(parallel)))
        assert sequential.read_bytes() == parallel.read_bytes()

    def test_meta_travels_through_the_engine(self):
        result = run_fuzz_campaign(FuzzConfig(seed=3, budget=4,
                                              differential=False,
                                              validate_witnesses=False))
        # The campaign tags every work unit; scenario tallies prove the
        # engine carried them through (they are derived from the programs,
        # which in turn drove the unit meta).
        assert sum(row["programs"] for row
                   in result.stats.by_scenario.values()) == 4
