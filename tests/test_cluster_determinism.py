"""Determinism contract of clustered runs (ISSUE satellite: workers 1/2/4).

Cluster assignments, propagated verdicts, and the JSONL cluster records
must be byte-identical whatever the worker count and across repeated runs
of the same corpus.  Clustering happens in the parent from submission
order, representatives are solved deterministically, and unit records are
streamed in submission order regardless of which worker finished first —
these tests pin all three properties down at the file-byte level.
"""

import json

import pytest

from repro.cluster import synthetic_cluster_corpus
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig


def _clustered_run(corpus, workers, path):
    engine = CheckEngine(EngineConfig(
        workers=workers, checker=CheckerConfig(cluster=True),
        cache_enabled=False, results_path=str(path)))
    result = engine.check_corpus(corpus)
    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    cluster_lines = [line for line, record in zip(lines, records)
                     if record["type"] == "cluster"]
    verdicts = [(unit.name, report_signature(unit.report))
                for unit in result.results]
    stable_unit_fields = [
        (record["unit"], record["error"],
         [(f["function"], f["diagnostics"], f["propagated"])
          for f in record["functions"]])
        for record in records if record["type"] == "unit"]
    return cluster_lines, verdicts, stable_unit_fields, result.stats


@pytest.fixture(scope="module")
def corpus():
    # Three instances of six templates: every cluster propagates twice.
    return synthetic_cluster_corpus(18, seed=0, snippets=SNIPPETS[:6])


def test_byte_identical_across_worker_counts(corpus, tmp_path):
    runs = {}
    for workers in (1, 2, 4):
        runs[workers] = _clustered_run(
            corpus, workers, tmp_path / f"w{workers}.jsonl")
    baseline = runs[1]
    for workers in (2, 4):
        cluster_lines, verdicts, unit_fields, stats = runs[workers]
        # The raw JSONL cluster record lines — not parsed equivalents —
        # must match: byte-identical is the contract.
        assert cluster_lines == baseline[0], f"workers={workers}"
        assert verdicts == baseline[1], f"workers={workers}"
        assert unit_fields == baseline[2], f"workers={workers}"
        assert stats.cluster_propagated == baseline[3].cluster_propagated
        assert stats.cluster_fallbacks == baseline[3].cluster_fallbacks == 0


def test_byte_identical_across_repeated_runs(corpus, tmp_path):
    first = _clustered_run(corpus, 2, tmp_path / "run1.jsonl")
    second = _clustered_run(corpus, 2, tmp_path / "run2.jsonl")
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]


def test_seed_changes_names_but_not_structure(tmp_path):
    # Different identifier seeds render different function names, but the
    # structural story — cluster count, sizes, propagations, diagnostics
    # per cluster — is exactly the same.
    def shape(seed):
        corpus = synthetic_cluster_corpus(12, seed=seed,
                                          snippets=SNIPPETS[:4])
        lines, _verdicts, _units, stats = _clustered_run(
            corpus, 1, tmp_path / f"seed{seed}.jsonl")
        records = [json.loads(line) for line in lines]
        return ([(r["size"], r["propagated"], r["fallbacks"],
                  r["diagnostics"]) for r in records],
                stats.cluster_clusters)

    assert shape(0) == shape(7)
