"""Tests for the experiment drivers (scaled-down runs)."""

import pytest

from repro.core.report import Algorithm
from repro.core.ubconditions import UBKind
from repro.corpus.snippets import snippet_by_name
from repro.corpus.systems import system_by_name
from repro.experiments import (
    SnippetAnalyzer,
    render_table,
    run_case_studies,
    run_completeness,
    run_figure4,
    run_figure9,
    run_figure16,
    run_precision,
    run_prevalence,
)


@pytest.fixture(scope="module")
def analyzer():
    """A module-scoped analyzer so snippet analyses are shared across tests."""
    return SnippetAnalyzer()


class TestCommon:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_analyzer_memoises(self, analyzer):
        snippet = snippet_by_name("signed_add_sanity_check")
        first = analyzer.analyze(snippet)
        second = analyzer.analyze(snippet)
        assert first is second
        assert first.flagged

    def test_analyzer_reports_kinds(self, analyzer):
        snippet = snippet_by_name("ext4_oversized_shift_check")
        analysis = analyzer.analyze(snippet)
        assert UBKind.OVERSIZED_SHIFT in analysis.kinds


class TestFigure4:
    def test_matrix_matches_paper(self):
        result = run_figure4()
        assert result.matches_paper, result.mismatches
        assert "gcc-4.8.1" in result.render()


class TestFigure9:
    def test_single_system_counts(self, analyzer):
        kerberos = system_by_name("Kerberos")
        result = run_figure9(systems=[kerberos], analyzer=analyzer)
        finding = result.findings[0]
        assert finding.seeded_bugs == 11
        assert finding.confirmed_bugs == 11
        assert finding.by_kind.get(UBKind.NULL_DEREF) == 9

    def test_render_contains_all_row(self, analyzer):
        result = run_figure9(systems=[system_by_name("Python")], analyzer=analyzer)
        assert "all" in result.render()


class TestFigure16:
    def test_scaled_measurement_shape(self):
        result = run_figure16(scale=0.002)
        names = {m.system for m in result.measurements}
        assert names == {"Kerberos", "Postgres", "Linux kernel"}
        linux = next(m for m in result.measurements if m.system == "Linux kernel")
        kerberos = next(m for m in result.measurements if m.system == "Kerberos")
        assert linux.files > kerberos.files
        assert linux.queries > 0
        assert "Figure 16" in result.render()


class TestPrevalence:
    def test_small_sample_statistics(self, analyzer):
        result = run_prevalence(sample_size=25, analyzer=analyzer)
        assert 0 < result.packages_with_reports <= 25
        assert result.reports_by_kind
        assert result.single_ub_reports >= 0
        assert result.extrapolated_packages_with_reports() > 0
        rendered = result.render()
        assert "Figure 17" in rendered and "Figure 18" in rendered

    def test_sampling_is_deterministic(self, analyzer):
        first = run_prevalence(sample_size=15, analyzer=analyzer)
        second = run_prevalence(sample_size=15, analyzer=analyzer)
        assert first.packages_with_reports == second.packages_with_reports
        assert first.reports_by_kind == second.reports_by_kind


class TestCaseStudiesAndPrecision:
    def test_case_studies_all_detected(self, analyzer):
        result = run_case_studies(analyzer=analyzer)
        assert result.detected_count == len(result.outcomes) >= 8
        assert "Figure 2" in result.render()

    def test_precision_matches_paper_composition(self, analyzer):
        result = run_precision(analyzer=analyzer)
        assert result.system_reports["Kerberos"] == 11
        assert result.system_redundant["Kerberos"] == 0
        assert result.system_reports["Postgres"] == 68
        assert result.system_redundant["Postgres"] == 4
        assert result.false_warning_rate("Postgres") == pytest.approx(4 / 68)


class TestCompleteness:
    def test_seven_of_ten(self):
        result = run_completeness()
        assert result.detected_count == 7
        assert result.matches_paper
        assert "7 of 10" in result.render() or "7" in result.render()


class TestRepairExperiment:
    def test_fast_subset_repairs_and_renders(self):
        from repro.experiments.repair import (
            FAST_SNIPPET_NAMES,
            run_repair_experiment,
        )

        result = run_repair_experiment(fast=True)
        assert {row.snippet for row in result.rows} == set(FAST_SNIPPET_NAMES)
        assert result.attempted > 0
        assert result.repair_rate >= 0.5
        # The honest gap stays a gap: the postgres division idiom has no
        # matching template and must be reported as such, not repaired.
        fig10 = next(r for r in result.rows
                     if r.snippet == "fig10_postgres_division_overflow")
        assert fig10.no_template == fig10.diagnostics > 0
        rendered = result.render()
        assert "Stage-6 auto-repair" in rendered
        assert "rejections by gate" in rendered

    def test_cli_entry_point(self, capsys):
        from repro.experiments.repair import main

        assert main(["--fast"]) == 0
        assert "Stage-6 auto-repair" in capsys.readouterr().out
