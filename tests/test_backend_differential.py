"""Cross-backend differential verdict suite.

Every solver query the checker issues on the snippet corpus must be decided
identically by every available backend:

* **checker level** — ``check_source`` per snippet per backend
  configuration; report signatures, query counts, and witness-validation
  counts must match the builtin baseline exactly.
* **query level** — the (base, deltas) pairs flowing through
  ``QueryContext.is_unsat`` are captured from a baseline run, then replayed
  through a fresh ``Solver`` per backend: verdicts must match, UNSAT
  replays must blame identical failed-assumption sets (the facade's uniform
  coarse attribution), and SAT replays must produce models the term
  evaluator verifies against the original query.

The ``dimacs`` backend is exercised through the bundled reference CLI
(``python -m repro.solver.backends.selfsolve``), so this suite covers the
whole subprocess path without a native solver; the ``pysat`` cases run only
where python-sat is importable (``pytest.importorskip``-style guards via
``available_backends``).
"""

import sys

import pytest

from repro.api import check_source
from repro.core.checker import CheckerConfig
from repro.core.queries import QueryContext
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.solver import CheckResult, Solver
from repro.solver.backends import SAT_BINARY_ENV, available_backends

SELFSOLVE = f"{sys.executable} -m repro.solver.backends.selfsolve"

#: Snippets that keep the full differential sweep fast; every UB kind is
#: still represented because each template family contributes one member.
CORPUS = (SNIPPETS + STABLE_SNIPPETS)[::2]


def _backend_configs():
    """Every backend configuration available in this environment."""
    configs = [("builtin", {"backend": "builtin"}),
               ("portfolio-builtin-dimacs",
                {"portfolio": ("builtin", "dimacs")}),
               ("dimacs", {"backend": "dimacs"})]
    if "pysat" in available_backends():
        configs.append(("pysat", {"backend": "pysat"}))
        configs.append(("portfolio-builtin-pysat",
                        {"portfolio": ("builtin", "pysat")}))
    return configs


@pytest.fixture(autouse=True)
def _selfsolve_binary(monkeypatch):
    monkeypatch.setenv(SAT_BINARY_ENV, SELFSOLVE)


# -- checker level ------------------------------------------------------------------


@pytest.mark.parametrize("label,overrides", _backend_configs(),
                         ids=[c[0] for c in _backend_configs()])
def test_checker_verdicts_identical_across_backends(label, overrides):
    for snippet in CORPUS:
        source = snippet.render("diff")
        baseline = check_source(source, config=CheckerConfig(
            solver_timeout=60.0, validate_witnesses=True))
        routed = check_source(source, config=CheckerConfig(
            solver_timeout=60.0, validate_witnesses=True, **overrides))
        assert report_signature(baseline) == report_signature(routed), \
            (label, snippet.name)
        assert baseline.queries == routed.queries, (label, snippet.name)
        assert baseline.timeouts == routed.timeouts == 0, (label, snippet.name)
        assert baseline.witnesses_confirmed == routed.witnesses_confirmed, \
            (label, snippet.name)
        assert baseline.witnesses_unconfirmed == routed.witnesses_unconfirmed, \
            (label, snippet.name)


def test_backend_wins_are_reported(monkeypatch):
    source = SNIPPETS[0].render("wins")
    report = check_source(source, config=CheckerConfig(
        solver_timeout=60.0, backend="dimacs"))
    fn = report.functions[0]
    # Every query that reached a backend was won by the only configured one.
    assert set(fn.backend_wins) <= {"dimacs"}
    assert sum(fn.backend_wins.values()) == fn.sat_calls
    assert fn.oracle_sat + fn.oracle_unsat + fn.sat_calls >= fn.solver_queries


# -- query level --------------------------------------------------------------------


def _capture_queries(source, max_queries=40):
    """Record the (manager, base, deltas) triples of one baseline run."""
    captured = []
    original = QueryContext.is_unsat

    def spy(self, deltas=()):
        if len(captured) < max_queries:
            captured.append((self.engine.encoder.manager,
                             list(self.base) + list(deltas), []))
        return original(self, deltas)

    QueryContext.is_unsat = spy
    try:
        check_source(source, config=CheckerConfig(solver_timeout=60.0))
    finally:
        QueryContext.is_unsat = original
    return captured


def _replay(manager, goal, **solver_kwargs):
    solver = Solver(manager, timeout=60.0, **solver_kwargs)
    for term in goal:
        solver.add(term)
    result = solver.check()
    model = solver.model().as_dict() if result is CheckResult.SAT else None
    return result, model, solver.failed_assumptions()


def test_query_replay_identical_per_backend():
    """Each captured query: same verdict, verified model, same failures."""
    backends = [{"backend": "builtin"}, {"backend": "dimacs"}]
    if "pysat" in available_backends():
        backends.append({"backend": "pysat"})

    queries = _capture_queries(SNIPPETS[0].render("replay"))
    assert queries, "the baseline run issued no solver queries"
    for manager, goal, _ in queries:
        reference, ref_model, ref_failed = _replay(manager, goal)
        if ref_model is not None:
            conjunction = manager.and_(*goal) if goal else manager.true()
            assert manager.evaluate(conjunction, ref_model)
        for kwargs in backends:
            result, model, failed = _replay(manager, goal, **kwargs)
            assert result is reference, kwargs
            assert failed == ref_failed, kwargs
            if result is CheckResult.SAT:
                # Models may differ between backends — but each must satisfy
                # the original query under the term evaluator.
                conjunction = manager.and_(*goal) if goal else manager.true()
                assert manager.evaluate(conjunction, model), kwargs


def test_assumption_failure_sets_identical_across_backends():
    """UNSAT-under-assumptions blames the same terms on every backend."""
    from repro.solver import TermManager

    backends = ["builtin", "dimacs"]
    if "pysat" in available_backends():
        backends.append("pysat")

    for name in backends:
        mgr = TermManager()
        solver = Solver(mgr, timeout=60.0, incremental=True, backend=name)
        x = mgr.bv_var("x", 8)
        solver.add(mgr.bvult(x, mgr.bv_const(3, 8)))
        good = mgr.bvult(x, mgr.bv_const(2, 8))
        bad = mgr.eq(mgr.bvmul(x, x), mgr.bv_const(255, 8))
        assert solver.check(assumptions=[good, bad]) is CheckResult.UNSAT, name
        # Uniform coarse attribution: every per-call term is blamed,
        # regardless of which backend answered or what core it found.
        assert solver.failed_assumptions() == [good, bad], name
        # Frame-only inconsistency keeps the documented empty-list contract.
        solver.push()
        solver.add(mgr.bvugt(x, mgr.bv_const(5, 8)))
        assert solver.check() is CheckResult.UNSAT, name
        assert solver.failed_assumptions() == [], name
        solver.pop()
