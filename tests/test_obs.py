"""Unit tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.api import check_source
from repro.core.checker import CheckerConfig
from repro.obs.chrometrace import (
    chrome_trace_document,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    absorb_dataclass,
    config_snapshot,
)
from repro.obs.report import render_profile, time_split
from repro.obs.trace import (
    Span,
    Tracer,
    counter,
    current_tracer,
    derive_span_id,
    graft,
    observe,
    span,
    span_payloads,
    span_timings,
    traced,
    tracing,
)

UNSTABLE = """
int write_check(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end) return -1;
    if (buf + len < buf) return -1;
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Span identity
# ---------------------------------------------------------------------------


class TestSpanIdentity:
    def test_ids_are_pure_functions_of_path(self):
        assert derive_span_id("", "run", 0) == derive_span_id("", "run", 0)
        assert derive_span_id("", "run", 0) != derive_span_id("", "run", 1)
        assert derive_span_id("", "a", 0) != derive_span_id("", "b", 0)
        assert derive_span_id("p1", "a", 0) != derive_span_id("p2", "a", 0)

    def test_children_get_sibling_sequence_numbers(self):
        root = Span("run")
        first = root.child("stage")
        second = root.child("stage")
        assert (first.seq, second.seq) == (0, 1)
        assert first.span_id != second.span_id
        assert first.parent_id == second.parent_id == root.span_id

    def test_identity_payload_excludes_timing(self):
        node = Span("solver.query", args={"verdict": "unsat"})
        node.ts, node.dur = 12.5, 0.25
        payload = node.identity()
        assert payload == {"id": node.span_id, "parent": "",
                           "name": "solver.query", "seq": 0,
                           "args": {"verdict": "unsat"}}

    def test_walk_is_depth_first_creation_order(self):
        root = Span("run")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [n.name for n in root.walk()] == ["run", "a", "a1", "b"]

    def test_self_time(self):
        root = Span("run")
        root.dur = 1.0
        child = root.child("c")
        child.dur = 0.4
        assert root.self_time() == pytest.approx(0.6)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_latency_histograms(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", depth=1) as handle:
                handle.set_arg("extra", True)
        root = tracer.finish()
        assert [n.name for n in root.walk()] == ["run", "outer", "inner"]
        inner = root.children[0].children[0]
        assert inner.args == {"depth": 1, "extra": True}
        assert tracer.metrics.histogram("latency.inner").count == 1
        assert tracer.metrics.histogram("latency.outer").count == 1

    def test_module_span_is_noop_without_tracer(self):
        assert current_tracer() is None
        with span("anything", arg=1) as handle:
            handle.set_arg("ignored", True)
        assert handle.span is None and handle.dur == 0.0

    def test_tracing_scope_and_helpers(self):
        tracer = Tracer()
        with tracing(tracer):
            assert current_tracer() is tracer
            with span("work", unit="u0"):
                counter("things", 2)
                observe("sizes", 10.0, buckets=(1.0, 100.0))
        assert current_tracer() is None
        assert [n.name for n in tracer.root.walk()] == ["run", "work"]
        assert tracer.metrics.counter("things") == 2
        assert tracer.metrics.histogram("sizes").count == 1

    def test_traced_decorator(self):
        @traced("custom.name")
        def work(x):
            return x + 1

        tracer = Tracer()
        with tracing(tracer):
            assert work(1) == 2
        assert tracer.root.children[0].name == "custom.name"

    def test_blob_round_trips_through_graft(self):
        tracer = Tracer(name="unit:u0")
        with tracer.span("stage"):
            with tracer.span("query", verdict="unsat"):
                pass
        blob = tracer.to_blob()
        assert set(blob) == {"spans", "timings", "metrics"}
        parent = Span("run")
        grafted = graft(parent, blob["spans"], blob["timings"], offset=5.0)
        assert grafted.name == "unit:u0"
        assert [n.name for n in parent.walk()] == \
            ["run", "unit:u0", "stage", "query"]
        # Ids re-derive from the new path; args and offsets survive.
        assert grafted.span_id == derive_span_id(parent.span_id, "unit:u0", 0)
        query = parent.children[0].children[0].children[0]
        assert query.args == {"verdict": "unsat"}
        assert query.ts >= 5.0


class TestGraft:
    def test_graft_position_determines_ids(self):
        source = Span("unit")
        source.child("a")
        payloads = span_payloads(source)
        left, right = Span("run"), Span("run")
        right.child("occupied")          # shifts the graft to sibling slot 1
        g0 = graft(left, payloads)
        g1 = graft(right, payloads)
        assert g0.span_id != g1.span_id
        assert g1.seq == 1
        # Same position, same payloads -> byte-identical subtree payloads.
        again = Span("run")
        assert span_payloads(graft(again, payloads)) == span_payloads(g0)

    def test_empty_payloads(self):
        assert graft(Span("run"), []) is None

    def test_orphan_rows_attach_to_subtree_root(self):
        payloads = [
            {"id": "r", "parent": "", "name": "unit", "seq": 0, "args": {}},
            {"id": "x", "parent": "missing", "name": "stray", "seq": 0,
             "args": {}},
        ]
        root = Span("run")
        grafted = graft(root, payloads)
        assert [n.name for n in grafted.walk()] == ["unit", "stray"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_histogram_buckets_and_stats(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.min == 0.5 and hist.max == 50.0
        assert hist.total == pytest.approx(55.5)

    def test_histogram_merge_same_layout(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.bucket_counts == [1, 1] and a.count == 2

    def test_histogram_merge_cross_layout_loses_no_counts(self):
        a, b = Histogram((1.0,)), Histogram((0.5, 2.0))
        b.observe(0.25)
        b.observe(1.5)
        a.merge(b)
        assert a.count == 2

    def test_registry_snapshot_round_trip_and_merge(self):
        reg = MetricsRegistry()
        reg.inc("queries", 3)
        reg.set_gauge("workers", 2)
        reg.observe("latency.x", 0.01)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()
        clone.merge(reg)
        assert clone.counter("queries") == 6
        assert clone.gauges["workers"] == 2          # gauges merge by max
        assert clone.histogram("latency.x").count == 2

    def test_snapshot_is_json_safe_and_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)

    def test_absorb_dataclass_prefixes_and_gauges(self):
        from repro.solver.solver import SolverStats

        stats = SolverStats(queries=4, backend_wins={"cdcl": 2})
        reg = absorb_dataclass(MetricsRegistry(), "solver", stats)
        assert reg.counter("solver.queries") == 4
        assert reg.counter("solver.backend_wins.cdcl") == 2

    def test_config_snapshot_is_json_safe(self):
        snap = config_snapshot(CheckerConfig())
        json.dumps(snap)
        assert snap["trace"] is False
        assert list(snap) == sorted(snap)
        with pytest.raises(TypeError):
            config_snapshot(42)


# ---------------------------------------------------------------------------
# Stats read-through: legacy schemas come out of the registry unchanged
# ---------------------------------------------------------------------------


class TestReadThrough:
    def test_solver_stats_as_dict_via_registry(self):
        from repro.solver.solver import SolverStats

        stats = SolverStats(queries=7, sat=3, unsat=4, total_time=1.25,
                            backend_wins={"cdcl": 5})
        payload = stats.as_dict()
        assert payload["queries"] == 7
        assert payload["sat"] == 3
        assert payload["total_time"] == 1.25
        assert payload["backend_wins"] == {"cdcl": 5}

    def test_run_stats_as_dict_via_registry(self):
        from repro.engine.engine import RunStats

        stats = RunStats(units=3, queries=9, cache_hits=2, workers=4,
                         backend_wins={"simplex": 1})
        payload = stats.as_dict()
        assert payload["units"] == 3
        assert payload["queries"] == 9
        assert payload["cache_hits"] == 2
        assert payload["workers"] == 4
        assert payload["solver"]["backend_wins"] == {"simplex": 1}


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def _tree(self):
        root = Span("run")
        root.dur = 2.0
        stage = root.child("stage", args={"unit": "u0"})
        stage.ts, stage.dur = 0.5, 1.0
        return root

    def test_events_are_complete_events_in_microseconds(self):
        events = chrome_trace_events(self._tree())
        assert [e["name"] for e in events] == ["run", "stage"]
        stage = events[1]
        assert stage["ph"] == "X"
        assert stage["ts"] == 500_000 and stage["dur"] == 1_000_000
        assert stage["args"]["unit"] == "u0"
        assert stage["args"]["id"]

    def test_document_validates_and_writes(self, tmp_path):
        document = chrome_trace_document(self._tree(),
                                         metrics={"queries": 3})
        validate_chrome_trace(document)
        assert document["otherData"]["metrics"] == {"queries": 3}
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._tree())
        validate_chrome_trace(json.loads(path.read_text()))

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("traceEvents"),
        lambda d: d["traceEvents"].append({"name": "x"}),
        lambda d: d["traceEvents"][0].update(ph="?"),
        lambda d: d["traceEvents"][0].update(ts="soon"),
    ])
    def test_validation_rejects_malformed_documents(self, mutate):
        document = chrome_trace_document(self._tree())
        mutate(document)
        with pytest.raises(ValueError):
            validate_chrome_trace(document)


# ---------------------------------------------------------------------------
# Text profile
# ---------------------------------------------------------------------------


class TestProfile:
    def test_time_split_buckets_by_prefix(self):
        root = Span("run")
        root.dur = 3.0
        query = root.child("solver.query")
        query.dur = 1.0
        stage = root.child("stage2.encode")
        stage.dur = 0.5
        split = time_split(root)
        assert split["solver"] == pytest.approx(1.0)
        assert split["encode"] == pytest.approx(0.5)

    def test_render_profile_lists_slowest_spans(self):
        root = Span("run")
        root.dur = 2.0
        slow = root.child("solver.query")
        slow.dur = 1.5
        text = render_profile(root, top=5)
        assert "solver.query" in text
        assert "solver" in text


# ---------------------------------------------------------------------------
# Pipeline integration: stages 1-6 show up in a traced check
# ---------------------------------------------------------------------------


class TestPipelineSpans:
    def test_traced_check_covers_stages_and_repair_gates(self):
        tracer = Tracer()
        with tracing(tracer):
            report = check_source(
                UNSTABLE, config=CheckerConfig(validate_witnesses=True,
                                               repair=True, trace=True))
        assert report.bugs
        names = {n.name for n in tracer.root.walk()}
        for expected in ("stage1.parse", "stage1.analyze", "stage1.lower",
                         "check.function", "stage2.encode",
                         "stage3.elimination", "stage3.simplification",
                         "stage4.report", "stage5.witness", "stage6.repair",
                         "solver.query", "witness.replay"):
            assert expected in names, expected
        # Every solver query span carries its verdict and the repair stage
        # ran at least one gate.
        queries = [n for n in tracer.root.walk() if n.name == "solver.query"]
        assert queries and all("verdict" in n.args for n in queries)
        assert any(n.name.startswith("repair.gate.")
                   for n in tracer.root.walk())
        # Latency histograms came along for free.
        assert tracer.metrics.histogram("latency.solver.query").count \
            == len(queries)
