"""Tests for the corpus package: snippets, systems, the Debian model, §6.6 suite."""

import pytest

from repro.core.classify import BugClass
from repro.core.ubconditions import UBKind
from repro.corpus import (
    COMPLETENESS_TESTS,
    DebianArchiveModel,
    SNIPPETS,
    STABLE_SNIPPETS,
    SYSTEMS,
    generate_system_corpus,
    snippet_by_name,
    snippets_for_kind,
)
from repro.corpus.benchmark_suite import expected_detection_count
from repro.corpus.debian import PAPER_REPORTS_BY_KIND
from repro.corpus.systems import (
    FIGURE9_KIND_TOTALS,
    FIGURE9_SYSTEM_TOTALS,
    FIGURE9_TOTAL_BUGS,
    apportion_bug_matrix,
    system_by_name,
)
from repro.frontend import analyze, parse


class TestSnippets:
    def test_every_ub_kind_has_a_template(self):
        for kind in FIGURE9_KIND_TOTALS:
            assert snippets_for_kind(kind), f"no template for {kind}"

    def test_unstable_snippets_have_expectations(self):
        for snippet in SNIPPETS:
            assert snippet.ub_kinds
            assert snippet.bug_class is not None
            assert snippet.is_unstable

    def test_stable_snippets_have_no_expected_kinds(self):
        for snippet in STABLE_SNIPPETS:
            assert not snippet.is_unstable

    def test_render_substitutes_suffix(self):
        snippet = snippet_by_name("fig2_null_check_after_deref")
        rendered = snippet.render("abc")
        assert "{S}" not in rendered
        assert "abc" in rendered

    def test_rendered_snippets_parse_and_typecheck(self):
        for snippet in SNIPPETS + STABLE_SNIPPETS:
            unit = analyze(parse(snippet.render("tu"), filename=snippet.name))
            assert unit.functions(), f"{snippet.name} defines no function"

    def test_unknown_snippet_raises(self):
        with pytest.raises(KeyError):
            snippet_by_name("definitely-not-a-snippet")

    def test_distinct_suffixes_give_distinct_sources(self):
        snippet = snippet_by_name("signed_add_sanity_check")
        assert snippet.render("a") != snippet.render("b")


class TestSystems:
    def test_row_totals_match_paper(self):
        assert sum(FIGURE9_SYSTEM_TOTALS.values()) == FIGURE9_TOTAL_BUGS
        for profile in SYSTEMS:
            assert sum(profile.breakdown.values()) == profile.total_bugs

    def test_column_totals_match_paper(self):
        matrix = apportion_bug_matrix()
        for kind, expected in FIGURE9_KIND_TOTALS.items():
            actual = sum(row.get(kind, 0) for row in matrix.values())
            assert actual == expected

    def test_hinted_placements_respected(self):
        kerberos = system_by_name("Kerberos")
        assert kerberos.breakdown.get(UBKind.NULL_DEREF) == 9
        linux = system_by_name("Linux kernel")
        assert linux.breakdown.get(UBKind.OVERSIZED_SHIFT) == 10
        postgres = system_by_name("Postgres")
        assert postgres.breakdown.get(UBKind.SIGNED_OVERFLOW) == 7

    def test_generate_corpus_counts(self):
        profile = system_by_name("Kerberos")
        corpus = generate_system_corpus(profile)
        seeded = [entry for entry in corpus if entry[2] is not None]
        stable = [entry for entry in corpus if entry[2] is None]
        assert len(seeded) == profile.total_bugs
        assert stable
        # Redundant-code templates are excluded from the bug seeding.
        assert all(entry[2].bug_class is not BugClass.REDUNDANT for entry in seeded)

    def test_generated_filenames_are_unique(self):
        profile = system_by_name("Linux kernel")
        corpus = generate_system_corpus(profile)
        names = [entry[0] for entry in corpus]
        assert len(names) == len(set(names))

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            system_by_name("Plan 10")


class TestDebianModel:
    def test_generation_is_deterministic(self):
        model_a = DebianArchiveModel(seed=7)
        model_b = DebianArchiveModel(seed=7)
        pkg_a = model_a.generate_package(42)
        pkg_b = model_b.generate_package(42)
        assert [f[0] for f in pkg_a.files] == [f[0] for f in pkg_b.files]
        assert [f[1] for f in pkg_a.files] == [f[1] for f in pkg_b.files]

    def test_different_seeds_differ(self):
        sample_a = DebianArchiveModel(seed=1).sample_packages(30)
        sample_b = DebianArchiveModel(seed=2).sample_packages(30)
        flags_a = [p.has_seeded_unstable_code for p in sample_a]
        flags_b = [p.has_seeded_unstable_code for p in sample_b]
        assert flags_a != flags_b or sample_a[0].files[0][1] != sample_b[0].files[0][1]

    def test_unstable_fraction_roughly_calibrated(self):
        model = DebianArchiveModel()
        sample = model.sample_packages(200)
        fraction = sum(1 for p in sample if p.has_seeded_unstable_code) / len(sample)
        paper_fraction = 3471 / 8575
        assert abs(fraction - paper_fraction) < 0.15

    def test_scale_to_archive(self):
        assert DebianArchiveModel.scale_to_archive(10, 100, population=1000) == 100
        assert DebianArchiveModel.scale_to_archive(5, 0) == 0.0

    def test_kind_weights_cover_paper_table(self):
        model = DebianArchiveModel()
        kinds = {kind for kind, _weight in model._kind_weight_table()}
        assert kinds == set(PAPER_REPORTS_BY_KIND)


class TestCompletenessSuite:
    def test_ten_tests_seven_expected(self):
        assert len(COMPLETENESS_TESTS) == 10
        assert expected_detection_count() == 7

    def test_missed_tests_have_reasons(self):
        for test in COMPLETENESS_TESTS:
            if not test.expected_detected:
                assert "4.6" in test.reason or "reachability" in test.reason

    def test_sources_parse(self):
        for test in COMPLETENESS_TESTS:
            unit = analyze(parse(test.source, filename=test.name))
            assert unit.functions()
