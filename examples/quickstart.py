#!/usr/bin/env python3
"""Quickstart: find optimization-unstable code in a C snippet.

This is the reproduction of the paper's headline workflow: hand STACK a
translation unit, get back warnings that name the unstable fragment, the
simplification the optimizer is entitled to make, and the undefined behavior
that licenses it.

Run with:  python examples/quickstart.py
"""

from repro import check_source

SOURCE = """
/* A sanity check in the style of Figure 1 of the paper: the programmer
 * wants to reject a `len` so large that `buf + len` wraps around, but an
 * optimizing compiler may assume pointer arithmetic never overflows and
 * silently delete the second check. */
int validate(char *buf, char *buf_end, unsigned int len) {
    if (buf + len >= buf_end)
        return -1;          /* len too large */
    if (buf + len < buf)
        return -1;          /* overflow check: unstable! */
    return 0;
}

/* The Linux TUN driver bug (Figure 2, CVE-2009-1897): the dereference makes
 * the later null check dead. */
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int tun_chr_poll(struct tun_struct *tun) {
    struct sock *sk = tun->sk;
    if (!tun)
        return 1;
    return 0;
}
"""


def main() -> None:
    report = check_source(SOURCE, filename="quickstart.c")
    print(report.describe())
    print()
    print("Summary by algorithm:")
    for algorithm, count in report.by_algorithm().items():
        print(f"  {algorithm.value:40s} {count}")
    print("Summary by undefined behavior:")
    for kind, count in report.by_ub_kind().items():
        print(f"  {kind.value:40s} {count}")


if __name__ == "__main__":
    main()
