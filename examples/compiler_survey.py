#!/usr/bin/env python3
"""Regenerate the paper's compiler survey (Figure 4) and the evaluation tables.

Runs the simulated compiler profiles over the six unstable sanity checks,
prints the Figure 4 matrix, and then prints the §6.6 completeness benchmark
and the §6.2 case-study table.

Run with:  python examples/compiler_survey.py
"""

from repro.experiments import (
    run_case_studies,
    run_completeness,
    run_figure4,
)


def main() -> None:
    figure4 = run_figure4()
    print(figure4.render())
    print()

    completeness = run_completeness()
    print(completeness.render())
    print()

    case_studies = run_case_studies()
    print(case_studies.render())


if __name__ == "__main__":
    main()
