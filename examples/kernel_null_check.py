#!/usr/bin/env python3
"""Case study: Linux kernel unstable code (Figures 2, 11, 15 and the ext4 shift).

Walks four kernel-flavoured examples through the checker, prints the
diagnostics, and shows how a correct rewrite silences each warning.

Run with:  python examples/kernel_null_check.py
"""

from repro import check_source

EXAMPLES = {
    "tun_chr_poll (Figure 2, CVE-2009-1897)": ("""
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int tun_chr_poll(struct tun_struct *tun) {
    struct sock *sk = tun->sk;      /* dereference before the check */
    if (!tun)
        return 1;
    return 0;
}
""", """
struct sock { int fd; };
struct tun_struct { struct sock *sk; };
int tun_chr_poll(struct tun_struct *tun) {
    if (!tun)                        /* check before the dereference */
        return 1;
    struct sock *sk = tun->sk;
    return 0;
}
"""),
    "decnet sysctl (Figure 11)": ("""
int dn_node_address(char *buf) {
    unsigned long node;
    char *nodep = strchr(buf, '.') + 1;
    if (!nodep)                      /* tests strchr()+1, never null */
        return -5;
    node = simple_strtoul(nodep, 0, 10);
    return 0;
}
""", """
int dn_node_address(char *buf) {
    unsigned long node;
    char *dot = strchr(buf, '.');
    if (!dot)                        /* test the strchr() result itself */
        return -5;
    node = simple_strtoul(dot + 1, 0, 10);
    return 0;
}
"""),
    "ext4 flex group shift": ("""
int ext4_fill_super(int groups_per_flex) {
    if (!(1 << groups_per_flex))     /* intended to reject huge shifts */
        return -22;
    return 1 << groups_per_flex;
}
""", """
int ext4_fill_super(int groups_per_flex) {
    if (groups_per_flex < 1 || groups_per_flex > 31)
        return -22;                  /* bound the shift amount directly */
    return 1 << groups_per_flex;
}
"""),
    "9p rdma_close (Figure 15, redundant check)": ("""
struct p9_client { long trans; int status; };
int rdma_close(struct p9_client *c) {
    long rdma = c->trans;
    if (c)
        c = c;                       /* caller guarantees c != NULL */
    return 0;
}
""", """
struct p9_client { long trans; int status; };
int rdma_close(struct p9_client *c) {
    long rdma = c->trans;            /* drop the redundant check */
    return 0;
}
"""),
}


def main() -> None:
    for title, (buggy, fixed) in EXAMPLES.items():
        print(f"=== {title} ===")
        report = check_source(buggy, filename="buggy.c")
        if report.bugs:
            for bug in report.bugs:
                print(bug.describe())
        else:
            print("no unstable code found")
        fixed_report = check_source(fixed, filename="fixed.c")
        print(f"--> after the recommended rewrite: "
              f"{len(fixed_report.bugs)} warning(s)")
        print()


if __name__ == "__main__":
    main()
