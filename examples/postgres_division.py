#!/usr/bin/env python3
"""Case study: the Postgres 64-bit signed division bug (§6.2.1, Figure 10).

The Postgres SQL division operator rejected a zero divisor, performed the
division, and only then tried to catch INT64_MIN / -1 by inspecting the
quotient.  Because the division itself already has undefined behavior in that
case, the post-hoc check is unstable: STACK proves it can be folded to false.
The example also analyzes the developers' replacement check (Figure 14),
which STACK flags as a *time bomb* — currently harmless, but only because no
production compiler exploits it yet.

Run with:  python examples/postgres_division.py
"""

from repro import check_source
from repro.core.checker import CheckerConfig

ORIGINAL = """
int64_t int8div(int64_t arg1, int64_t arg2) {
    if (arg2 == 0)
        return 0;                       /* ereport(ERROR) in Postgres */
    int64_t result = arg1 / arg2;
    /* Overflow check placed AFTER the division: unstable. */
    if (arg2 == -1 && arg1 < 0 && result <= 0)
        return 0;
    return result;
}
"""

DEVELOPER_FIX = """
int64_t int8div_fixed(int64_t arg1, int64_t arg2) {
    if (arg2 == 0)
        return 0;
    /* The developers' own fix (Figure 14): detect INT64_MIN via negation.
     * The negation itself overflows for INT64_MIN, so this is a time bomb. */
    if (arg1 != 0 && ((-arg1 < 0) == (arg1 < 0)))
        return 0;
    return arg1 / arg2;
}
"""

RECOMMENDED_FIX = """
int64_t int8div_safe(int64_t arg1, int64_t arg2) {
    if (arg2 == 0)
        return 0;
    /* The paper's recommended fix: compare against the constant directly,
     * before dividing. */
    if (arg1 == -9223372036854775807 - 1 && arg2 == -1)
        return 0;
    return arg1 / arg2;
}
"""


def show(title: str, source: str) -> None:
    print(f"=== {title} ===")
    report = check_source(source, filename=f"{title}.c")
    if not report.bugs:
        print("no unstable code found\n")
        return
    for bug in report.bugs:
        print(bug.describe())
        print()


def main() -> None:
    show("original Postgres operator", ORIGINAL)
    show("developers' replacement check", DEVELOPER_FIX)
    show("recommended fix", RECOMMENDED_FIX)


if __name__ == "__main__":
    main()
