"""§6.3: precision of the checker on the Kerberos and Postgres corpora."""

from repro.experiments.casestudies import PAPER_PRECISION, run_precision


def test_section63_precision(once):
    result = once(run_precision)
    print()
    print(result.render())

    # Kerberos: the paper reports 11 reports, all real bugs, zero false
    # warnings after fixing.
    assert result.system_reports["Kerberos"] == PAPER_PRECISION["Kerberos"]["reports"]
    assert result.system_redundant["Kerberos"] == 0

    # Postgres: reports exist and the false-warning (redundant) rate is low,
    # matching the paper's 4-of-68.
    assert result.system_reports["Postgres"] > 0
    assert result.false_warning_rate("Postgres") <= 0.15
