"""Observability smoke: trace schema, stage coverage, and tracing overhead.

Four acceptance properties of the ``repro.obs`` layer (docs/OBSERVABILITY.md):

* **Loadable traces.** A traced engine run writes a Chrome trace-event JSON
  document that passes the exporter's own schema validator (the same shape
  Perfetto / ``chrome://tracing`` loads), with one complete event per span.
* **Full pipeline coverage.** The trace carries a span for every pipeline
  stage that ran — frontend, encode, elimination, simplification, report,
  witness replay — and one ``solver.query`` span per solver query counted
  by the run stats.
* **Bounded tracing overhead.** Recording spans costs < 10% wall-clock on
  the Figure 16 smoke workload (min-of-3 both ways, plus a small absolute
  slack so a loaded CI box cannot flake the ratio on sub-second runs).
* **Bounded ops overhead.** The serve daemon's operational layer — debug
  event log, metrics snapshots, slow-query recording, flight ring — costs
  < 5% wall-clock on the serve smoke workload, measured as min-of-3 cold
  daemon submissions with the layer fully on vs. fully off.
"""

import json
import time

from repro.cluster import synthetic_cluster_corpus
from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig
from repro.experiments.fig16 import run_figure16
from repro.obs.chrometrace import validate_chrome_trace
from repro.serve import ServeClient, ServeConfig, ServeServer

#: Stage spans every traced snippet run must contain (stage 6 needs
#: ``repair=True`` and is exercised by tests/test_obs.py instead).
_REQUIRED_STAGES = (
    "stage1.parse", "stage1.analyze", "stage1.lower",
    "stage2.encode", "stage3.elimination", "stage3.simplification",
    "stage4.report", "stage5.witness",
)


def test_trace_schema_and_stage_coverage(tmp_path, engine_workers):
    trace_path = tmp_path / "trace.json"
    corpus = [(s.name, s.render("obssmoke")) for s in SNIPPETS[:6]]
    engine = CheckEngine(EngineConfig(
        workers=engine_workers,
        checker=CheckerConfig(validate_witnesses=True),
        cache_enabled=False, trace_path=str(trace_path)))
    outcome = engine.check_corpus(corpus)

    document = json.loads(trace_path.read_text(encoding="utf-8"))
    validate_chrome_trace(document)

    events = document["traceEvents"]
    names = [event["name"] for event in events]
    assert names[0] == "run"
    for stage in _REQUIRED_STAGES:
        assert stage in names, f"no span for {stage}"
    # One unit span per corpus entry, one solver.query span per query the
    # run stats counted (cache hits included: the span records the verdict
    # wherever it came from).
    unit_spans = [n for n in names if n.startswith("unit:")]
    assert len(unit_spans) == len(corpus)
    assert names.count("solver.query") == outcome.stats.queries > 0
    # The in-memory tree matches what was exported.
    assert outcome.trace is not None
    assert sum(1 for _ in outcome.trace.walk()) == len(events)


def test_tracing_overhead_under_ten_percent(once, fast_mode, engine_workers):
    scale = 0.001 if fast_mode else 0.003

    def fig16_wall(trace):
        config = CheckerConfig(minimize_ub_sets=False, trace=trace)
        started = time.monotonic()
        run_figure16(scale=scale, config=config, workers=engine_workers)
        return time.monotonic() - started

    def compare():
        untraced = min(fig16_wall(False) for _ in range(3))
        traced = min(fig16_wall(True) for _ in range(3))
        return untraced, traced

    untraced, traced = once(compare)
    print()
    print(f"fig16 smoke (scale={scale}): untraced {untraced:.3f}s, "
          f"traced {traced:.3f}s "
          f"({(traced / untraced - 1.0) * 100.0:+.1f}%)")
    assert traced < untraced * 1.10 + 0.25, (
        f"tracing overhead too high: {untraced:.3f}s -> {traced:.3f}s")


def test_ops_overhead_under_five_percent(tmp_path, once, fast_mode):
    """The operational layer must not tax the serve smoke workload > 5%."""
    instances = 8 if fast_mode else 24
    corpus = synthetic_cluster_corpus(instances, seed=1)
    units = [(f"{name}.c", source) for name, source in corpus]

    def submit_wall(tag, **ops_kwargs):
        # Fresh daemon per round: both sides start from a cold query cache,
        # and daemon/worker boot stays outside the measured window.
        socket_path = str(tmp_path / f"{tag}.sock")
        server = ServeServer(ServeConfig(
            socket_path=socket_path, workers=1, **ops_kwargs))
        server.start()
        try:
            with ServeClient(socket_path, name="bench-obs") as client:
                assert client.ping()
                started = time.monotonic()
                client.check(units, timeout=600.0)
                return time.monotonic() - started
        finally:
            server.close()

    def compare():
        bare = min(submit_wall(f"bare{i}") for i in range(3))
        full = min(submit_wall(
            f"ops{i}",
            log_path=str(tmp_path / f"ops{i}.log"), log_level="debug",
            metrics_path=str(tmp_path / f"ops{i}.prom"),
            metrics_interval=0.2, slow_query_ms=0.0) for i in range(3))
        return bare, full

    bare, full = once(compare)
    print()
    print(f"serve smoke ({len(units)} units): ops off {bare:.3f}s, "
          f"ops on {full:.3f}s ({(full / bare - 1.0) * 100.0:+.1f}%)")
    assert full < bare * 1.05 + 0.25, (
        f"ops-layer overhead too high: {bare:.3f}s -> {full:.3f}s")
