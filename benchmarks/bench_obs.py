"""Observability smoke: trace schema, stage coverage, and tracing overhead.

Three acceptance properties of the ``repro.obs`` layer (docs/OBSERVABILITY.md):

* **Loadable traces.** A traced engine run writes a Chrome trace-event JSON
  document that passes the exporter's own schema validator (the same shape
  Perfetto / ``chrome://tracing`` loads), with one complete event per span.
* **Full pipeline coverage.** The trace carries a span for every pipeline
  stage that ran — frontend, encode, elimination, simplification, report,
  witness replay — and one ``solver.query`` span per solver query counted
  by the run stats.
* **Bounded overhead.** Recording spans costs < 10% wall-clock on the
  Figure 16 smoke workload (min-of-3 both ways, plus a small absolute
  slack so a loaded CI box cannot flake the ratio on sub-second runs).
"""

import json
import time

from repro.core.checker import CheckerConfig
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig
from repro.experiments.fig16 import run_figure16
from repro.obs.chrometrace import validate_chrome_trace

#: Stage spans every traced snippet run must contain (stage 6 needs
#: ``repair=True`` and is exercised by tests/test_obs.py instead).
_REQUIRED_STAGES = (
    "stage1.parse", "stage1.analyze", "stage1.lower",
    "stage2.encode", "stage3.elimination", "stage3.simplification",
    "stage4.report", "stage5.witness",
)


def test_trace_schema_and_stage_coverage(tmp_path, engine_workers):
    trace_path = tmp_path / "trace.json"
    corpus = [(s.name, s.render("obssmoke")) for s in SNIPPETS[:6]]
    engine = CheckEngine(EngineConfig(
        workers=engine_workers,
        checker=CheckerConfig(validate_witnesses=True),
        cache_enabled=False, trace_path=str(trace_path)))
    outcome = engine.check_corpus(corpus)

    document = json.loads(trace_path.read_text(encoding="utf-8"))
    validate_chrome_trace(document)

    events = document["traceEvents"]
    names = [event["name"] for event in events]
    assert names[0] == "run"
    for stage in _REQUIRED_STAGES:
        assert stage in names, f"no span for {stage}"
    # One unit span per corpus entry, one solver.query span per query the
    # run stats counted (cache hits included: the span records the verdict
    # wherever it came from).
    unit_spans = [n for n in names if n.startswith("unit:")]
    assert len(unit_spans) == len(corpus)
    assert names.count("solver.query") == outcome.stats.queries > 0
    # The in-memory tree matches what was exported.
    assert outcome.trace is not None
    assert sum(1 for _ in outcome.trace.walk()) == len(events)


def test_tracing_overhead_under_ten_percent(once, fast_mode, engine_workers):
    scale = 0.001 if fast_mode else 0.003

    def fig16_wall(trace):
        config = CheckerConfig(minimize_ub_sets=False, trace=trace)
        started = time.monotonic()
        run_figure16(scale=scale, config=config, workers=engine_workers)
        return time.monotonic() - started

    def compare():
        untraced = min(fig16_wall(False) for _ in range(3))
        traced = min(fig16_wall(True) for _ in range(3))
        return untraced, traced

    untraced, traced = once(compare)
    print()
    print(f"fig16 smoke (scale={scale}): untraced {untraced:.3f}s, "
          f"traced {traced:.3f}s "
          f"({(traced / untraced - 1.0) * 100.0:+.1f}%)")
    assert traced < untraced * 1.10 + 0.25, (
        f"tracing overhead too high: {untraced:.3f}s -> {traced:.3f}s")
