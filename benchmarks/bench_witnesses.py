"""Stage-5: witness confirmation rates and differential optimizer testing.

The paper's evidence that warnings matter is concrete (§6.1 new bugs, §6.3
precision): each diagnostic corresponds to an input on which optimized and
unoptimized code diverge.  This harness asserts the reproduction delivers
the same property mechanically:

* every snippet-corpus diagnostic whose SAT query yields a model is
  *confirmed* by replay — the interpreter trips the reported minimal-UB-set
  condition on the witness input,
* the seeded differential runner reports zero unjustified miscompiles for
  every built-in compiler profile, while the UB-exploiting profiles do show
  UB-justified divergences (the optimizer is actually doing something).
"""

from repro.compilers.profiles import ALL_PROFILES, modern_profiles
from repro.exec.diff import DiffClassification
from repro.experiments.witnesses import run_witness_experiment


def test_witness_confirmation_and_differential(once, fast_mode):
    profiles = modern_profiles() if fast_mode else ALL_PROFILES
    inputs = 3 if fast_mode else 8
    result = once(run_witness_experiment, profiles=profiles,
                  inputs_per_function=inputs, seed=0)
    print()
    print(result.render())

    # Every validated diagnostic is concretely confirmed: the witness input
    # triggers the reported UB, so the divergence is justified (§6.3's
    # "every warning has an input" claim, made executable).
    assert result.validated > 0
    assert result.unconfirmed == 0
    assert result.confirmation_rate == 1.0

    # Zero unjustified miscompiles across every profile; the aggressive
    # profiles diverge only on inputs whose unoptimized run triggered UB.
    diff = result.diff
    assert diff.miscompiles == []
    assert diff.counts.get(DiffClassification.AGREE.value, 0) > 0
    assert diff.justified_divergences > 0
    for profile, per in diff.by_profile.items():
        assert per.get(DiffClassification.MISCOMPILE.value, 0) == 0, profile
