"""Figure 18 / §6.5: unstable-code reports per undefined-behavior condition."""

from repro.core.ubconditions import UBKind
from repro.experiments.debian_prevalence import run_prevalence


def test_figure18_reports_per_ub_condition(once):
    result = once(run_prevalence, sample_size=80)
    print()
    print(result.render_figure18())

    by_kind = result.reports_by_kind
    # Null-pointer dereference dominates the archive-wide reports, as in
    # Figure 18 (59,230 of ~75k reports).
    assert by_kind, "no reports at all"
    dominant = max(by_kind, key=by_kind.get)
    assert dominant is UBKind.NULL_DEREF
    # Multiple kinds contribute (the paper lists ten kinds with >20 reports).
    assert len(by_kind) >= 5
    # Most reports involve a single UB condition, a few involve several
    # (paper: 69,301 single vs 2,579 multi).
    assert result.single_ub_reports > result.multi_ub_reports
