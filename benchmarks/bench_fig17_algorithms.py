"""Figure 17 / §6.5: unstable-code reports per algorithm across the archive."""

from repro.core.report import Algorithm
from repro.corpus.debian import PAPER_C_PACKAGES, PAPER_PACKAGES_WITH_REPORTS
from repro.experiments.debian_prevalence import run_prevalence


def test_figure17_reports_per_algorithm(once, engine_workers):
    result = once(run_prevalence, sample_size=60, workers=engine_workers)
    print()
    print(result.render_figure17())

    # Every algorithm contributes reports (the paper's point: all three are
    # useful), and the boolean oracle produces the most, as in Figure 17.
    by_algorithm = result.reports_by_algorithm
    assert by_algorithm.get(Algorithm.ELIMINATION, 0) > 0
    assert by_algorithm.get(Algorithm.SIMPLIFY_BOOLEAN, 0) > 0
    assert by_algorithm.get(Algorithm.SIMPLIFY_ALGEBRA, 0) > 0
    assert by_algorithm[Algorithm.SIMPLIFY_BOOLEAN] >= by_algorithm[Algorithm.SIMPLIFY_ALGEBRA]

    # Prevalence (§6.5): the paper finds unstable code in 3,471 of 8,575
    # packages (~40%).  The extrapolated estimate should land in the same
    # ballpark (25-60%).
    fraction = result.extrapolated_packages_with_reports() / PAPER_C_PACKAGES
    paper_fraction = PAPER_PACKAGES_WITH_REPORTS / PAPER_C_PACKAGES
    assert 0.25 <= fraction <= 0.60
    assert abs(fraction - paper_fraction) < 0.25
