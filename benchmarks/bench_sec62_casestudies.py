"""§6.2: the paper's numbered case studies, re-checked one by one."""

from repro.experiments.casestudies import run_case_studies


def test_section62_case_studies(once):
    result = once(run_case_studies)
    print()
    print(result.render())
    # Every numbered example from the paper (Figures 1, 2, 10-15) is detected.
    assert result.detected_count == len(result.outcomes)
    assert len(result.outcomes) >= 8
