"""Figure 16: checker performance on scaled Kerberos/Postgres/Linux corpora.

The analysis phase runs through the parallel corpus-checking engine
(``repro.engine``); ``--engine-workers`` controls the fan-out.
"""

from repro.experiments.fig16 import run_figure16


def test_figure16_performance(once, engine_workers):
    result = once(run_figure16, scale=0.004, workers=engine_workers)
    print()
    print(result.render())

    by_name = {m.system: m for m in result.measurements}
    kerberos = by_name["Kerberos"]
    postgres = by_name["Postgres"]
    linux = by_name["Linux kernel"]

    # Shape of Figure 16: Linux is by far the largest system, and the query
    # count scales with corpus size.
    assert linux.files > postgres.files >= kerberos.files
    assert linux.queries > postgres.queries
    assert linux.queries > kerberos.queries
    # Timeouts stay a small fraction of queries (the paper reports < 0.5%).
    for measurement in result.measurements:
        assert measurement.timeout_fraction < 0.05
