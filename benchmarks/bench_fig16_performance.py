"""Figure 16: checker performance on scaled Kerberos/Postgres/Linux corpora.

The analysis phase runs through the parallel corpus-checking engine
(``repro.engine``); ``--engine-workers`` controls the fan-out.  The second
benchmark compares incremental solver contexts against scratch solving on
the same workload: verdicts must be identical, while the solver-level work
(bit-blasted clauses, CDCL restarts) must drop.
"""

from repro.api import check_corpus
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS
from repro.engine.engine import EngineConfig
from repro.experiments.fig16 import run_figure16


def test_figure16_performance(once, engine_workers, record_bench):
    result = once(run_figure16, scale=0.004, workers=engine_workers)
    print()
    print(result.render())

    record_bench("fig16", {
        m.system: {
            "analysis_time": round(m.analysis_time, 6),
            "build_time": round(m.build_time, 6),
            "cache_hits": m.cache_hits,
            "files": m.files,
            "queries": m.queries,
            "timeouts": m.timeouts,
        }
        for m in result.measurements
    })

    by_name = {m.system: m for m in result.measurements}
    kerberos = by_name["Kerberos"]
    postgres = by_name["Postgres"]
    linux = by_name["Linux kernel"]

    # Shape of Figure 16: Linux is by far the largest system, and the query
    # count scales with corpus size.
    assert linux.files > postgres.files >= kerberos.files
    assert linux.queries > postgres.queries
    assert linux.queries > kerberos.queries
    # Timeouts stay a small fraction of queries (the paper reports < 0.5%).
    for measurement in result.measurements:
        assert measurement.timeout_fraction < 0.05


def _run_mode(incremental: bool):
    """Check every unstable snippet template in one solving mode.

    The cache is disabled and the wall-clock timeout generous so the
    comparison measures solver work (deterministic conflict budgets), not
    cache luck or CI load.
    """
    corpus = [(s.name, s.render("fig16cmp")) for s in SNIPPETS]
    config = CheckerConfig(solver_timeout=60.0, incremental=incremental)
    engine_config = EngineConfig(workers=0, checker=config, cache_enabled=False)
    return check_corpus(corpus, engine_config=engine_config)


def test_figure16_incremental_vs_scratch(once):
    def compare():
        return _run_mode(incremental=True), _run_mode(incremental=False)

    incremental, scratch = once(compare)
    print()
    for name, run in (("incremental", incremental), ("scratch", scratch)):
        s = run.stats
        print(f"{name:12s} sat_calls={s.sat_calls} restarts={s.restarts} "
              f"blasted_clauses={s.blasted_clauses} "
              f"solver_time={s.solver_time:.2f}s")

    # Incremental contexts must not change what the checker reports ...
    assert report_signature(incremental) == report_signature(scratch)
    assert incremental.stats.timeouts == scratch.stats.timeouts == 0
    # ... while doing measurably less solver work on the same workload:
    # shared base terms and memoized bit-blasting cut the CNF volume, and
    # retained learned clauses keep CDCL restarts no worse.
    assert incremental.stats.blasted_clauses < scratch.stats.blasted_clauses
    assert incremental.stats.restarts <= scratch.stats.restarts
    assert (incremental.stats.restarts + incremental.stats.blasted_clauses
            < scratch.stats.restarts + scratch.stats.blasted_clauses)
