"""Figure 4: the compiler survey matrix.

Runs the six unstable sanity checks through all sixteen simulated compiler
profiles and checks every cell against the matrix printed in the paper.
"""

from repro.experiments.fig4 import run_figure4


def test_figure4_compiler_survey(once):
    result = once(run_figure4)
    print()
    print(result.render())
    # Every one of the 16 x 6 cells must agree with the paper.
    assert result.matches_paper, result.mismatches
