"""Solver-backend portfolio benchmark: verdict identity and racing wins.

Runs the fig16 snippet corpus through the checker once per backend
configuration and asserts the hard contract: every configuration must
report **byte-identical verdicts** (``report_signature`` equality — any
divergence is a soundness bug and fails the benchmark outright).  On top
of identity the benchmark reports per-backend win counts and oracle
pre-answer counts, and — when a native backend (python-sat) is present —
asserts that the portfolio wins wall-clock over the builtin-only baseline
on the re-solve-heavy scratch workload.

``--bench-fast`` shrinks the corpus for the CI smoke job; the ``dimacs``
configurations drive the bundled reference CLI
(``python -m repro.solver.backends.selfsolve``) so the subprocess path is
always exercised, native solver or not.
"""

import os
import sys
import time

import pytest

from repro.api import check_corpus
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.engine.engine import EngineConfig
from repro.solver.backends import SAT_BINARY_ENV, available_backends

SELFSOLVE = f"{sys.executable} -m repro.solver.backends.selfsolve"


@pytest.fixture(autouse=True)
def _selfsolve_binary(monkeypatch):
    monkeypatch.setenv(SAT_BINARY_ENV, SELFSOLVE)


def _corpus(fast_mode):
    snippets = SNIPPETS + STABLE_SNIPPETS
    if fast_mode:
        snippets = snippets[::3]
    return [(s.name, s.render("portfolio")) for s in snippets]


def _configurations(fast_mode):
    """(label, CheckerConfig overrides) per runnable configuration."""
    configs = [("builtin", {"backend": "builtin"})]
    if not fast_mode:
        configs.append(("dimacs", {"backend": "dimacs"}))
    configs.append(("portfolio-builtin-dimacs",
                    {"portfolio": ("builtin", "dimacs")}))
    if "pysat" in available_backends():
        configs.append(("pysat", {"backend": "pysat"}))
        configs.append(("portfolio-builtin-pysat",
                        {"portfolio": ("builtin", "pysat")}))
    return configs


def _run(corpus, **overrides):
    config = CheckerConfig(solver_timeout=60.0, **overrides)
    engine_config = EngineConfig(workers=0, checker=config,
                                 cache_enabled=False)
    started = time.monotonic()
    result = check_corpus(corpus, engine_config=engine_config)
    return result, time.monotonic() - started


def test_portfolio_verdict_identity(once, fast_mode):
    """HARD: every backend configuration reports identical verdicts."""
    corpus = _corpus(fast_mode)
    configurations = _configurations(fast_mode)

    def sweep():
        baseline, baseline_elapsed = _run(corpus)
        rows = [("baseline", baseline, baseline_elapsed)]
        for label, overrides in configurations:
            rows.append((label, *_run(corpus, **overrides)))
        return baseline, rows

    baseline, rows = once(sweep)
    reference = report_signature(baseline)

    print()
    print(f"{'configuration':28s} {'diags':>5s} {'queries':>7s} "
          f"{'sat_calls':>9s} {'oracle':>6s} {'time':>7s}  backend wins")
    for label, result, elapsed in rows:
        stats = result.stats
        wins = ", ".join(f"{name}={count}" for name, count
                         in sorted(stats.backend_wins.items())) or "-"
        print(f"{label:28s} {stats.diagnostics:5d} {stats.queries:7d} "
              f"{stats.sat_calls:9d} "
              f"{stats.oracle_sat + stats.oracle_unsat:6d} "
              f"{elapsed:6.2f}s  {wins}")

        # Verdict identity is the contract: any divergence from the
        # builtin-only baseline is a hard failure.
        assert report_signature(result) == reference, label
        assert stats.timeouts == 0, label

    # Per-backend win accounting: every raced query is credited exactly
    # once, to a configured member.
    for label, result, _elapsed in rows[1:]:
        stats = result.stats
        assert sum(stats.backend_wins.values()) == stats.sat_calls, label
        expected = {"builtin", "pysat", "dimacs"}
        assert set(stats.backend_wins) <= expected, label
    by_label = {label: result for label, result, _ in rows}
    assert set(by_label["builtin"].stats.backend_wins) <= {"builtin"}

    # The oracle pre-pass decides a meaningful share before any backend
    # runs, identically across configurations.
    oracle_counts = {label: (result.stats.oracle_sat,
                             result.stats.oracle_unsat)
                     for label, result, _ in rows}
    assert len(set(oracle_counts.values())) == 1, oracle_counts
    assert by_label["builtin"].stats.oracle_sat > 0


@pytest.mark.skipif("pysat" not in available_backends(),
                    reason="needs python-sat for a native racing partner")
def test_portfolio_wins_wall_clock_with_native_backend(once, fast_mode):
    """With python-sat present, racing must not lose to builtin alone.

    Scratch mode re-solves every query from zero, which is where a native
    CDCL implementation pays off; the portfolio must finish the same
    workload at least as fast as the builtin-only run (with identical
    verdicts, asserted above and re-asserted here).
    """
    corpus = _corpus(fast_mode)

    def compare():
        builtin, builtin_elapsed = _run(corpus, incremental=False,
                                        backend="builtin")
        raced, raced_elapsed = _run(corpus, incremental=False,
                                    portfolio=("pysat", "builtin"))
        return builtin, builtin_elapsed, raced, raced_elapsed

    builtin, builtin_elapsed, raced, raced_elapsed = once(compare)
    print()
    print(f"builtin-only: {builtin_elapsed:.2f}s   "
          f"portfolio(pysat,builtin): {raced_elapsed:.2f}s   "
          f"wins: {dict(sorted(raced.stats.backend_wins.items()))}")
    assert report_signature(raced) == report_signature(builtin)
    # Modest margin: the race adds thread overhead per query, so "wins"
    # means finishing within 10% of — or faster than — the baseline.
    assert raced_elapsed <= builtin_elapsed * 1.1
    assert raced.stats.backend_wins.get("pysat", 0) > 0
