"""Figure 9 / §6.1: the 160 new bugs, by system and undefined-behavior kind."""

from repro.corpus.systems import FIGURE9_KIND_TOTALS, FIGURE9_TOTAL_BUGS
from repro.experiments.fig9 import run_figure9


def test_figure9_new_bugs(once):
    result = once(run_figure9)
    print()
    print(result.render())

    # The paper reports 160 confirmed bugs; every seeded pattern instance in
    # the synthetic corpora must be confirmed by the checker.
    assert result.total_seeded == FIGURE9_TOTAL_BUGS
    assert result.total_confirmed == FIGURE9_TOTAL_BUGS
    # Column totals (bugs per UB kind) must match the paper's "all" row.
    assert result.kind_totals() == FIGURE9_KIND_TOTALS
    # No warnings on the stable filler code.
    assert result.total_false_positives == 0
