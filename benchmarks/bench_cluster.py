"""Archive-scale clustering benchmark: verdict identity and wall-clock win.

The Debian prevalence study's workload (§6.5) is modelled by a synthetic
corpus that instantiates every snippet template many times under fresh
identifiers — 10 instances per template in the full run, for a corpus an
order of magnitude larger than the snippet suite itself.  The clustered
engine run must (a) produce **byte-identical verdicts** to the exhaustive
run, unit by unit, (b) never propagate a verdict that the per-member solver
gate did not confirm, and (c) beat the exhaustive run's wall clock at least
3×.  Both runs share one configuration apart from the ``cluster`` flag;
the query cache is disabled in both so the speedup measures structural
dedup alone, not verdict replay (bench_engine_scaling.py covers caching).
``--bench-fast`` shrinks the corpus for the CI smoke job and relaxes the
speedup floor to >1× (a loaded CI box plus a small corpus makes tight
timing ratios flaky).
"""

import time

from repro.cluster import synthetic_cluster_corpus
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.engine.engine import CheckEngine, EngineConfig


def _run(corpus, cluster, workers):
    config = EngineConfig(workers=workers,
                          checker=CheckerConfig(cluster=cluster),
                          cache_enabled=False)
    started = time.monotonic()
    result = CheckEngine(config).check_corpus(corpus)
    return result, time.monotonic() - started


def test_cluster_verdict_identity_and_speedup(once, fast_mode, engine_workers,
                                              record_bench):
    templates = len(SNIPPETS) + len(STABLE_SNIPPETS)
    instances = 4 * templates if fast_mode else 10 * templates
    corpus = synthetic_cluster_corpus(instances, seed=0)
    if not fast_mode:
        # The tentpole claim is archive scale: ≥10× the snippet suite.
        assert len(corpus) >= 10 * templates

    def compare():
        clustered, clustered_wall = _run(corpus, True, engine_workers)
        exhaustive, exhaustive_wall = _run(corpus, False, engine_workers)
        return clustered, clustered_wall, exhaustive, exhaustive_wall

    clustered, clustered_wall, exhaustive, exhaustive_wall = once(compare)

    # (a) Verdict identity, unit by unit, against the exhaustive ground truth.
    clustered_verdicts = [(r.name, report_signature(r.report))
                          for r in clustered.results]
    exhaustive_verdicts = [(r.name, report_signature(r.report))
                           for r in exhaustive.results]
    assert clustered_verdicts == exhaustive_verdicts
    assert clustered.stats.failed_units == 0
    assert exhaustive.stats.failed_units == 0

    # (b) Zero unconfirmed propagations: every copied verdict passed the
    # per-member solver gate, and nothing fell back silently.
    stats = clustered.stats
    assert stats.cluster_propagated == stats.cluster_confirmed
    assert stats.cluster_fallbacks == 0
    assert stats.cluster_propagated > 0
    assert stats.cluster_clusters < stats.cluster_functions

    record_bench("cluster", {
        "clustered_wall": round(clustered_wall, 6),
        "clusters": stats.cluster_clusters,
        "confirmed": stats.cluster_confirmed,
        "corpus_units": len(corpus),
        "diagnostics": stats.diagnostics,
        "exhaustive_wall": round(exhaustive_wall, 6),
        "fallbacks": stats.cluster_fallbacks,
        "propagated": stats.cluster_propagated,
        "speedup": round(exhaustive_wall / clustered_wall, 4),
        "workers": engine_workers,
    })

    # (c) The wall-clock win that justifies the subsystem.
    speedup = exhaustive_wall / clustered_wall
    floor = 1.0 if fast_mode else 3.0
    assert speedup > floor, (
        f"clustered {clustered_wall:.2f}s vs exhaustive "
        f"{exhaustive_wall:.2f}s — only {speedup:.2f}x")

    print()
    print(f"corpus: {len(corpus)} units ({templates} templates), "
          f"{engine_workers} workers")
    print(f"clustered:  {clustered_wall:.2f}s — {stats.cluster_clusters} "
          f"clusters, {stats.cluster_propagated} propagated "
          f"({stats.cluster_confirmed} confirmed, "
          f"{stats.cluster_fallbacks} fallbacks)")
    print(f"exhaustive: {exhaustive_wall:.2f}s — "
          f"{exhaustive.stats.functions} functions solved individually")
    print(f"speedup: {speedup:.2f}x, identical verdicts "
          f"({stats.diagnostics} diagnostics)")


def test_cluster_deterministic_across_workers(once, fast_mode):
    """Cluster records and verdicts do not depend on the worker count."""
    instances = 28 if fast_mode else 56
    corpus = synthetic_cluster_corpus(instances, seed=0)

    def run(workers):
        result, _wall = _run(corpus, True, workers)
        return ([(r.name, report_signature(r.report)) for r in result.results],
                result.stats.cluster_clusters, result.stats.cluster_propagated)

    def compare():
        return run(0), run(2)

    sequential, parallel = once(compare)
    assert sequential == parallel
