"""§6.6: the ten-test completeness benchmark (7 of 10 identified)."""

from repro.experiments.completeness import run_completeness


def test_section66_completeness(once):
    result = once(run_completeness)
    print()
    print(result.render())
    # The paper identifies 7 of the 10 tests; the reproduction must match the
    # per-test expectations exactly (including the three deliberate misses).
    assert result.detected_count == 7
    assert result.matches_paper
