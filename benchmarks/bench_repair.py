"""Stage-6: auto-repair rate and the zero-unsound-patch invariant.

The repair subsystem's contract is asymmetric: missing a repair is an
honest gap (``no template`` / ``rejected``), but *emitting* a patch that
any gate did not prove is unsound.  This harness regenerates the repair
table over the snippet corpus and asserts:

* every emitted patch carries all three gate verdicts, every one passed,
  and the unified diff is non-empty — the zero-unsound-patch invariant,
* the per-gate rejection counters are consistent with the verdicts (no
  candidate was silently dropped),
* the template library repairs at least half of the corpus diagnostics
  (the acceptance bar for the subsystem), with every template family
  represented in full mode.
"""

from repro.repair import GATES, RepairStatus
from repro.experiments.repair import run_repair_experiment


def test_repair_rate_and_soundness(once, fast_mode, engine_workers):
    result = once(run_repair_experiment, fast=fast_mode,
                  workers=engine_workers)
    print()
    print(result.render())

    assert result.attempted > 0

    # Zero-unsound-patch invariant: a diagnostic is only REPAIRED when all
    # three gates ran and passed, and the patch is a real diff.
    for diagnostic in result.diagnostics:
        repair = diagnostic.repair
        assert repair is not None
        if repair.status is RepairStatus.REPAIRED:
            assert repair.all_gates_passed, diagnostic
            assert len(repair.gates) == len(GATES)
            assert [g.gate for g in repair.gates] == \
                ["solver-equivalence", "stability-recheck", "witness-replay"]
            assert repair.patch.startswith("--- a/"), diagnostic
            assert "+++ b/" in repair.patch
        else:
            # Nothing half-verified leaks out of a non-repaired diagnostic.
            assert not repair.patch, diagnostic

    # Bookkeeping consistency: the three buckets partition the attempts.
    assert result.repaired + result.rejected + result.no_template == \
        result.attempted

    # The acceptance bar: at least half of the snippet-corpus diagnostics
    # receive a verified patch (in fast mode the subset is representative).
    assert result.repair_rate >= 0.5, result.render()

    if not fast_mode:
        templates_used = {row.templates for row in result.rows if row.templates}
        flat = {name for joined in templates_used for name in joined.split(",")}
        assert flat == {"pointer-bound-check", "reorder-guard",
                        "widen-signed-arithmetic", "guard-oversized-shift"}
