"""Fuzzing-campaign benchmark: determinism, soundness, and throughput.

Three invariants of the generative fuzzing subsystem (docs/FUZZ.md), run
at acceptance scale:

* **Determinism per seed** — two campaigns with one seed produce
  byte-identical JSONL streams, and a parallel run reproduces the
  sequential one exactly.
* **Zero unexplained miscompiles / zero crashes** — the seeded
  differential runner may only observe UB-justified divergences, every
  generated program must compile and check without failure, and every
  verdict must match the generator's expectation.
* **Reproducers for every finding** — each flagged program carries a
  ddmin-minimized reproducer, and the minimized template still reproduces
  the verdict when re-checked from scratch.

``--bench-fast`` shrinks the campaign for the CI smoke job;
``--engine-workers`` sizes the engine pool for the throughput run.
"""

import json
from pathlib import Path

from repro.api import check_source
from repro.core.checker import CheckerConfig
from repro.experiments.fuzz import DEFAULT_BUDGET, FAST_BUDGET, \
    render, run_fuzz_experiment
from repro.fuzz import FuzzConfig, run_fuzz_campaign


def _campaign_config(seed, budget, workers=0, out=None):
    return FuzzConfig(seed=seed, budget=budget, workers=workers,
                      reduce=True, out=out)


def test_fuzz_campaign_is_deterministic_per_seed(tmp_path, fast_mode, once):
    budget = 10 if fast_mode else 16
    paths = [str(tmp_path / f"run{i}.jsonl") for i in range(3)]

    def both_runs():
        first = run_fuzz_campaign(_campaign_config(11, budget, out=paths[0]))
        second = run_fuzz_campaign(_campaign_config(11, budget, out=paths[1]))
        return first, second

    first, second = once(both_runs)
    blob = Path(paths[0]).read_bytes()
    assert blob == Path(paths[1]).read_bytes()
    assert first.stats.as_dict() == second.stats.as_dict()

    # A parallel run replays the sequential stream byte for byte: results
    # come back in submission order and the records carry no timing.
    run_fuzz_campaign(_campaign_config(11, budget, workers=2, out=paths[2]))
    assert blob == Path(paths[2]).read_bytes()

    # A different seed genuinely reruns the dice.
    other = str(tmp_path / "other.jsonl")
    run_fuzz_campaign(_campaign_config(12, budget, out=other))
    assert blob != Path(other).read_bytes()


def test_fuzz_campaign_acceptance_scale(tmp_path, fast_mode, engine_workers,
                                        once):
    """The headline campaign: >= 200 programs through the parallel engine."""
    budget = FAST_BUDGET if fast_mode else DEFAULT_BUDGET
    out = str(tmp_path / "campaign.jsonl")
    result = once(run_fuzz_experiment, budget=budget, seed=0,
                  workers=engine_workers, reduce=True, out=out)
    print()
    print(render(result))
    stats = result.stats

    # Zero crashes: every program compiled, verified, and checked.
    assert stats.programs == budget
    assert stats.failed_units == 0
    # Every verdict matches the generator's expectation — detection on the
    # unstable variants, precision on the stable-by-construction ones.
    assert stats.expectation_mismatches == 0
    assert stats.flagged_programs == stats.expected_unstable > 0
    # Zero unexplained miscompiles in the differential campaign.
    assert stats.diff_executions > 0
    assert stats.miscompiles == 0
    # Witness replay confirms diagnostics; none may be refuted outright.
    assert stats.witnesses_confirmed > 0
    assert stats.witnesses_unconfirmed == 0

    # Every unstable finding is accompanied by a minimized reproducer.
    flagged = [r for r in result.records if r["flagged"]]
    assert flagged and all(r["reduced"] is not None for r in flagged)
    for record in flagged:
        assert record["reduced"]["elements_after"] <= \
            record["reduced"]["elements_before"]

    # ... and every distinct MiniC reproducer still reproduces the verdict
    # when re-checked from scratch, outside the campaign.
    config = CheckerConfig(solver_timeout=None, minimize_ub_sets=False)
    seen = set()
    for record in flagged:
        reduced = record["reduced"]
        if reduced["mode"] != "minic" or reduced["template"] in seen:
            continue
        seen.add(reduced["template"])
        report = check_source(reduced["template"].replace("{S}", "r0"),
                              config=config)
        kinds = {k.value for bug in report.bugs for k in bug.ub_kinds}
        assert kinds & set(reduced["kinds"])
    assert seen, "campaign produced no MiniC reproducers to re-check"

    # The stream on disk matches the in-memory records plus one summary.
    lines = Path(out).read_text(encoding="utf-8").splitlines()
    assert len(lines) == len(result.records) + 1
    summary = json.loads(lines[-1])
    assert summary["type"] == "fuzz-run"
    assert summary["diff"]["miscompile"] == 0

    # Throughput: the campaign must stay corpus-scale practical.  The floor
    # is deliberately loose (CI machines vary); locally this runs at tens
    # of programs per second.
    assert stats.throughput > 0.5


def test_fuzz_scheduler_covers_every_scenario(fast_mode, once):
    budget = 36 if fast_mode else 72
    result = once(run_fuzz_campaign,
                  FuzzConfig(seed=5, budget=budget, reduce=False))
    by_scenario = result.stats.by_scenario
    # Coverage-guided scheduling must leave no scenario class unvisited.
    from repro.fuzz import ALL_SCENARIOS

    assert set(by_scenario) == set(ALL_SCENARIOS)
    assert all(row["programs"] > 0 for row in by_scenario.values())
