"""Engine scaling smoke benchmark: sequential vs. multi-worker wall-clock.

A CI-friendly target that records how the corpus-checking engine behaves as
workers are added, on a corpus small enough to finish in seconds.  Both runs
land in the ``BENCH_*`` trajectory so regressions in either path show up;
the shape assertion is result equivalence, not a speedup (a 2-worker pool
on a loaded CI box may not beat a warm sequential loop at this corpus size).
A third target compares incremental solver contexts against scratch solving
on the engine corpus (same verdicts, fewer bit-blasted clauses).
"""

from repro.api import check_corpus
from repro.core.checker import CheckerConfig
from repro.core.report import report_signature as _signature
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS
from repro.engine.engine import EngineConfig


def _corpus():
    """A small mixed corpus: every other unstable template plus stable padding."""
    snippets = SNIPPETS[::2] + STABLE_SNIPPETS[::2]
    return [(s.name, s.render("scale")) for s in snippets]


def test_engine_sequential(once):
    result = once(check_corpus, _corpus(), workers=0)
    assert result.stats.units == len(_corpus())
    assert result.stats.failed_units == 0
    assert result.stats.diagnostics > 0
    print()
    print(f"sequential: {result.stats.as_dict()}")


def test_engine_parallel(once, engine_workers):
    # --engine-workers 0/1 forces this benchmark sequential too (CI escape
    # hatch for boxes where forking a pool is unavailable or too slow).
    workers = engine_workers if engine_workers > 1 else 0
    result = once(check_corpus, _corpus(), workers=workers)
    assert result.stats.units == len(_corpus())
    assert result.stats.failed_units == 0
    # Parallel fan-out must not change what the checker reports.
    assert _signature(result) == _signature(check_corpus(_corpus(), workers=0))
    print()
    print(f"{workers} workers: {result.stats.as_dict()}")


def test_engine_incremental_vs_scratch(once):
    def run(incremental):
        config = CheckerConfig(solver_timeout=60.0, incremental=incremental)
        engine_config = EngineConfig(workers=0, checker=config,
                                     cache_enabled=False)
        return check_corpus(_corpus(), engine_config=engine_config)

    def compare():
        return run(True), run(False)

    incremental, scratch = once(compare)
    assert _signature(incremental) == _signature(scratch)
    assert incremental.stats.blasted_clauses < scratch.stats.blasted_clauses
    assert incremental.stats.restarts <= scratch.stats.restarts
    print()
    print(f"incremental: {incremental.stats.as_dict()}")
    print(f"scratch:     {scratch.stats.as_dict()}")
