"""Engine scaling smoke benchmark: sequential vs. multi-worker wall-clock.

A CI-friendly target that records how the corpus-checking engine behaves as
workers are added, on a corpus small enough to finish in seconds.  Both runs
land in the ``BENCH_*`` trajectory so regressions in either path show up;
the shape assertion is result equivalence, not a speedup (a 2-worker pool
on a loaded CI box may not beat a warm sequential loop at this corpus size).
"""

from repro.api import check_corpus
from repro.corpus.snippets import SNIPPETS, STABLE_SNIPPETS


def _corpus():
    """A small mixed corpus: every other unstable template plus stable padding."""
    snippets = SNIPPETS[::2] + STABLE_SNIPPETS[::2]
    return [(s.name, s.render("scale")) for s in snippets]


def _signature(result):
    return sorted(
        (d.function, str(d.location), d.algorithm.value,
         tuple(sorted(k.value for k in set(d.ub_kinds))))
        for d in result.bugs)


def test_engine_sequential(once):
    result = once(check_corpus, _corpus(), workers=0)
    assert result.stats.units == len(_corpus())
    assert result.stats.failed_units == 0
    assert result.stats.diagnostics > 0
    print()
    print(f"sequential: {result.stats.as_dict()}")


def test_engine_parallel(once, engine_workers):
    # --engine-workers 0/1 forces this benchmark sequential too (CI escape
    # hatch for boxes where forking a pool is unavailable or too slow).
    workers = engine_workers if engine_workers > 1 else 0
    result = once(check_corpus, _corpus(), workers=workers)
    assert result.stats.units == len(_corpus())
    assert result.stats.failed_units == 0
    # Parallel fan-out must not change what the checker reports.
    assert _signature(result) == _signature(check_corpus(_corpus(), workers=0))
    print()
    print(f"{workers} workers: {result.stats.as_dict()}")
