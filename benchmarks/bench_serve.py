"""Always-on service benchmark: verdict identity and the warm-worker win.

The daemon's two contracts (docs/SERVE.md) measured together:

* **Verdict identity** — a corpus submitted to ``repro serve`` must stream
  byte-identical per-unit verdict records (timing fields normalized via
  :func:`repro.engine.sink.verdict_view`) to what the batch CLI
  (``python -m repro cluster --no-cluster``) writes for the same corpus.
  Both sides run one sequential checking pipeline (a single warm worker vs.
  the CLI's default sequential engine): cache-hit counters are part of the
  record, and only equivalent pipelines replay the cache identically.
* **Warm latency** — once the daemon's workers and solver-query cache are
  warm, submitting one more unit must beat a cold CLI invocation of the
  same unit, which pays interpreter boot, pipeline imports, and an empty
  cache every time.  ``--bench-fast`` relaxes the required margin to >1×
  (loaded CI boxes make tight ratios flaky); the full run demands ≥2×.

The daemon runs with the full operational-observability layer enabled
(``--log`` at debug, ``--metrics-file``, slow-query recording — see
docs/OBSERVABILITY.md): verdict identity must hold *with* ops on, which is
exactly the out-of-band contract — event-log/metrics/flight output never
enters the result stream.

Metrics land in ``BENCH_serve.json`` via the ``record_bench`` fixture.
"""

import json
import os
import subprocess
import sys
import time

from repro.cluster import synthetic_cluster_corpus
from repro.engine.sink import verdict_view
from repro.serve import ServeClient, ServeConfig, ServeServer


def _repo_env():
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    return env


def _batch_cli_records(paths, out_path):
    subprocess.run(
        [sys.executable, "-m", "repro", "cluster", "--no-cluster",
         *paths, "--out", str(out_path)],
        check=False, capture_output=True, env=_repo_env(), timeout=600)
    return [json.loads(line) for line in
            open(out_path, encoding="utf-8") if line.strip()]


def _cold_cli_latency(path):
    started = time.monotonic()
    result = subprocess.run(
        [sys.executable, "-m", "repro", "check", str(path), "--json"],
        capture_output=True, env=_repo_env(), timeout=600)
    elapsed = time.monotonic() - started
    assert result.returncode in (0, 1), result.stderr
    return elapsed


def test_serve_verdict_identity_and_warm_latency(tmp_path, once, fast_mode,
                                                 engine_workers,
                                                 record_bench):
    instances = 12 if fast_mode else 40
    corpus = synthetic_cluster_corpus(instances, seed=0)
    paths = []
    units = []
    for name, source in corpus:
        path = tmp_path / f"{name}.c"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
        units.append((str(path), source))

    batch_out = tmp_path / "batch.jsonl"
    socket_path = str(tmp_path / "bench.sock")
    workers = 1                               # sequential, like the batch CLI

    log_path = str(tmp_path / "serve.log")
    metrics_path = str(tmp_path / "metrics.prom")

    def run():
        batch_records = _batch_cli_records(paths, batch_out)
        server = ServeServer(ServeConfig(
            socket_path=socket_path, workers=workers,
            log_path=log_path, log_level="debug",
            metrics_path=metrics_path, metrics_interval=0.2,
            slow_query_ms=0.0))
        server.start()
        try:
            with ServeClient(socket_path, name="bench") as client:
                served_records = client.check(units, timeout=600.0)
                # One extra unit against the now-warm daemon: structurally
                # alpha-equivalent to the corpus, so it replays from cache.
                warm_unit = (str(tmp_path / "warm-probe.c"), corpus[0][1])
                warm_started = time.monotonic()
                warm_records = client.check([warm_unit], timeout=600.0)
                warm_latency = time.monotonic() - warm_started
        finally:
            server.close()
        cold_latency = _cold_cli_latency(paths[0])
        return (batch_records, served_records, warm_records,
                warm_latency, cold_latency)

    (batch_records, served_records, warm_records,
     warm_latency, cold_latency) = once(run)

    # (a) Byte-identical per-unit verdict records, served vs. batch CLI —
    # with the event log, metrics exporter, and slow-query recorder all on.
    batch_units = [r for r in batch_records if r["type"] == "unit"]
    served_units = [r for r in served_records if r["type"] == "unit"]
    assert len(batch_units) == len(served_units) == len(corpus)
    for served, batch in zip(served_units, batch_units):
        assert json.dumps(verdict_view(served), sort_keys=True) == \
            json.dumps(verdict_view(batch), sort_keys=True), served["unit"]

    # The out-of-band telemetry actually happened, in its own files.
    from repro.obs.ops import validate_log_record
    from repro.obs.promexport import validate_prometheus_text

    log_records = [json.loads(line) for line in
                   open(log_path, encoding="utf-8") if line.strip()]
    for log_record in log_records:
        validate_log_record(log_record)
    assert any(r["event"] == "slow-query" for r in log_records)
    metrics_families = validate_prometheus_text(
        open(metrics_path, encoding="utf-8").read())
    assert metrics_families["serve_units_completed"]["value"] >= len(corpus)

    # (b) The warm submission answered from the resident cache...
    warm_run = warm_records[-1]
    assert warm_run["type"] == "run"
    assert warm_run["solver_queries"] == 0
    assert warm_run["cache_hits"] > 0

    # ...and beat the cold CLI's end-to-end latency.
    speedup = cold_latency / warm_latency
    floor = 1.0 if fast_mode else 2.0
    assert speedup > floor, (
        f"warm submit {warm_latency:.3f}s vs cold CLI {cold_latency:.3f}s "
        f"— only {speedup:.2f}x")

    record_bench("serve", {
        "cold_cli_latency": round(cold_latency, 6),
        "corpus_units": len(corpus),
        "diagnostics": sum(len(u["diagnostics"]) for u in served_units),
        "verdict_identical_units": len(served_units),
        "warm_cache_hits": warm_run["cache_hits"],
        "warm_latency": round(warm_latency, 6),
        "warm_speedup": round(speedup, 4),
        "workers": workers,
    })

    print()
    print(f"corpus: {len(corpus)} units, {workers} warm workers")
    print(f"verdict identity: {len(served_units)} served records match "
          f"the batch CLI byte for byte")
    print(f"warm submit: {warm_latency * 1000:.0f}ms vs cold CLI "
          f"{cold_latency * 1000:.0f}ms — {speedup:.1f}x")
