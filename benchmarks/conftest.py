"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
experiments run exactly once per benchmark (rounds=1) — the interesting
output is the regenerated table and the shape assertions, not nanosecond
timing stability.

``--engine-workers`` selects how many worker processes the engine-backed
benchmarks fan out over (default 2; pass 0 to force sequential runs).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine-workers", action="store", type=int, default=2,
        help="worker processes for engine-backed benchmarks (0 = sequential)")


@pytest.fixture
def engine_workers(request):
    """Worker count for CheckEngine-backed benchmarks."""
    return request.config.getoption("--engine-workers")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
