"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
experiments run exactly once per benchmark (rounds=1) — the interesting
output is the regenerated table and the shape assertions, not nanosecond
timing stability.

``--engine-workers`` selects how many worker processes the engine-backed
benchmarks fan out over (default 2; pass 0 to force sequential runs).
``--bench-fast`` switches benchmarks that support it into a reduced-size
smoke mode — fewer seeded inputs, fewer profiles, smaller fuzzing budgets
(``bench_fuzz.py``) — used by the CI benchmark/fuzz smoke jobs to keep
wall-clock low while still executing every code path.

``record_bench`` writes a machine-readable ``BENCH_<name>.json`` at the
repo root so CI and regression tooling can diff benchmark metrics across
commits without scraping pytest output (docs/OBSERVABILITY.md).
"""

import json
import pathlib

import pytest

#: Repo root — conftest lives in benchmarks/, records land one level up.
_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--engine-workers", action="store", type=int, default=2,
        help="worker processes for engine-backed benchmarks (0 = sequential)")
    parser.addoption(
        "--bench-fast", action="store_true", default=False,
        help="run benchmarks in reduced-size smoke mode (CI)")


@pytest.fixture
def engine_workers(request):
    """Worker count for CheckEngine-backed benchmarks."""
    return request.config.getoption("--engine-workers")


@pytest.fixture
def fast_mode(request):
    """True when the benchmark should shrink its workload (--bench-fast)."""
    return request.config.getoption("--bench-fast")


@pytest.fixture
def record_bench(request, fast_mode):
    """Write ``BENCH_<name>.json`` at the repo root for a benchmark run.

    The record carries the package version, the ``--bench-fast`` flag, and
    the benchmark's own metrics dict — sorted keys, no timestamps, so two
    runs of identical code in one mode produce identical files apart from
    genuinely measured values.
    """
    from repro import __version__

    def writer(name, metrics):
        record = {
            "bench": name,
            "fast_mode": fast_mode,
            "metrics": dict(metrics),
            "version": __version__,
        }
        path = _REPO_ROOT / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n",
                        encoding="utf-8")
        return path

    return writer


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
