"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
experiments run exactly once per benchmark (rounds=1) — the interesting
output is the regenerated table and the shape assertions, not nanosecond
timing stability.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
