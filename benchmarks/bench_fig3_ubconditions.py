"""Figure 3: the undefined-behavior condition table.

Regenerates the construct / sufficient-condition table and exercises the
annotation pass that attaches these conditions to IR (the paper's ``bug_on``
insertion), measuring how quickly a representative function is annotated.
"""

from repro.api import compile_source
from repro.core.encode import FunctionEncoder
from repro.core.ubconditions import IMPLEMENTED_KINDS, UBKind, figure3_rows

ANNOTATION_SOURCE = """
int worker(int *p, int x, int y, char *buf, unsigned int len) {
    int a[8];
    int v = *p;
    int s = x + y;
    int q = x / y;
    int sh = x << y;
    int b = a[x];
    int m = abs(x);
    if (buf + len < buf)
        return -1;
    return v + s + q + sh + b + m;
}
"""


def _annotate():
    module = compile_source(ANNOTATION_SOURCE, filename="fig3.c")
    function = module.defined_functions()[0]
    encoder = FunctionEncoder(function)
    conditions = []
    for inst in function.instructions():
        conditions.extend(encoder.ub_conditions(inst))
    return conditions


def test_figure3_table_and_annotation(once):
    rows = figure3_rows()
    assert len(rows) == len(IMPLEMENTED_KINDS) == 10

    conditions = once(_annotate)
    kinds_seen = {condition.kind for condition in conditions}
    # The single worker function above exercises most of Figure 3's rows.
    expected = {
        UBKind.NULL_DEREF, UBKind.SIGNED_OVERFLOW, UBKind.DIV_BY_ZERO,
        UBKind.OVERSIZED_SHIFT, UBKind.BUFFER_OVERFLOW, UBKind.ABS_OVERFLOW,
        UBKind.POINTER_OVERFLOW,
    }
    assert expected <= kinds_seen

    print()
    print("Figure 3: undefined-behavior conditions implemented by the checker")
    for construct, condition, name in rows:
        print(f"  {construct:28s} {condition:44s} {name}")
